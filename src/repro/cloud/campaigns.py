"""Attacker campaigns over a fleet-scale churn simulation.

The paper's threat is a *fleet* property: which boards an attacker can
re-acquire, how often they are wiped, how much background tenant churn
shuffles the free pool.  This module simulates a provider-sized fleet
(100k boards, millions of rent/release events per simulated year) by
splitting the simulation into two coupled layers:

* **Churn** -- the background tenant population.  Arrivals and rental
  durations are drawn *up front* into a :class:`ChurnTrace` (so the
  randomness is independent of how the simulation is batched), and a
  churn engine replays them against a LIFO free stack.  Two engines
  exist: a per-event reference (:class:`_ReferenceChurn`, the obviously
  correct one) and a vectorised window engine (:class:`_BulkChurn`)
  that resolves an entire batch of events with a handful of numpy
  passes.  They are pinned identical by tests; the bulk engine is what
  sustains the >1M lifecycle-events/sec bench floor.

* **Tracked boards** -- the handful of boards an attacker or victim
  actually touches.  Those materialise as real
  :class:`~repro.fabric.device.FpgaDevice` instances on first contact
  (:class:`LazyFleet`), and integrate ambient/thermal history over
  deterministic tick boundaries, so the full BTI physics runs only
  where it matters.

Campaigns (:func:`run_flash_campaign`, :func:`run_scan_campaign`)
schedule victims and attacker actions on the
:class:`~repro.cloud.events.EventLoop` and report fleet-level
**recovery yield**: the fraction of victims whose secret an attacker
recovered from remanent delay shifts.

Bulk-engine mechanics (for the maintainer)
------------------------------------------

Within one window the free stack only ever changes at its top.  Each
event therefore touches exactly one stack *boundary*: an arrival at
fill level ``f`` pops position ``f - 1``; a release at fill ``f``
pushes position ``f``.  Grouping the window's events by boundary (a
stable argsort), events within a group strictly alternate pop/push, so
each arrival's board is either the board pushed by the group's
immediately preceding release, or -- when there is none -- the board
sitting at that position in the pre-window stack.  That turns board
assignment into parent pointers between arrivals, resolved in
O(log chain) pointer-doubling passes, and the post-window stack is
read off each boundary group's last event.  Capacity misses (an
arrival finding an empty stack) are peeled off one at a time, exactly
as the reference engine drops them.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from repro.errors import CloudError, ConfigurationError
from repro.cloud.events import EventKind, EventLoop
from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import PartDescriptor, VIRTEX_ULTRASCALE_PLUS
from repro.fabric.thermal import DataCenterAmbient
from repro.observability import trace
from repro.observability.metrics import registry
from repro.observability.progress import note_event, note_phase
from repro.observability.timeseries import (
    SERIES_AGING_DEBT,
    SERIES_BOARDS_PROBED,
    SERIES_RECOVERY_YIELD,
    FlightRecorder,
)
from repro.physics.aging import CLOUD_PART, WearProfile
from repro.physics.pool_array import SegmentBtiArray
from repro.rng import RngFactory, SeedLike, make_rng

__all__ = [
    "ChurnModel",
    "ChurnTrace",
    "VirtualRegion",
    "LazyFleet",
    "FleetScenario",
    "FleetSimulator",
    "FlashAttackPlan",
    "ScanPlan",
    "CampaignResult",
    "run_flash_campaign",
    "run_scan_campaign",
    "run_churn_benchmark",
]

#: Rental durations are clamped above zero so a release can never sort
#: before its own arrival (the engines order same-time events
#: release-first).
_MIN_RENTAL_HOURS = 1e-9


def _inc_churn_counters(events: int, rents: int,
                        releases: int, drops: int) -> None:
    """Fold one churn advance into the registry's fleet counters.

    Both engines call this with per-advance deltas, so the counter
    *values* agree exactly between the reference and bulk engines (the
    satellite equality test pins this).
    """
    if events:
        registry.counter(
            "fleet_events_total",
            "discrete events dispatched by event loops",
        ).inc(events)
    if rents:
        registry.counter(
            "fleet_events_rent_total",
            "RENT events across loop dispatch and churn",
        ).inc(rents)
    if releases:
        registry.counter(
            "fleet_events_release_total",
            "RELEASE events across loop dispatch and churn",
        ).inc(releases)
    if drops:
        registry.counter(
            "fleet_events_dropped_total",
            "arrivals dropped by capacity misses",
        ).inc(drops)


# ---------------------------------------------------------------------------
# Churn model: all randomness drawn up front
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnTrace:
    """A pre-drawn background-tenant schedule.

    ``arrivals`` is sorted ascending; ``durations`` aligns with it.
    Drawing the whole trace before the simulation starts is what makes
    runs reproducible *regardless of event-batch size*: windowing the
    simulation only slices this trace, it never draws.
    """

    arrivals: np.ndarray
    durations: np.ndarray

    def __post_init__(self) -> None:
        if len(self.arrivals) != len(self.durations):
            raise ConfigurationError("arrivals and durations must align")

    def __len__(self) -> int:
        return len(self.arrivals)


@dataclass(frozen=True)
class ChurnModel:
    """Poisson tenant arrivals with exponential rental durations."""

    arrival_rate_per_hour: float = 50.0
    mean_rental_hours: float = 12.0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_hour <= 0.0:
            raise ConfigurationError("arrival rate must be positive")
        if self.mean_rental_hours <= 0.0:
            raise ConfigurationError("mean rental must be positive")

    def draw(self, horizon_hours: float, seed: SeedLike = None) -> ChurnTrace:
        """Draw every arrival in ``[0, horizon)`` in one vectorised pass.

        The draw count is a deterministic function of the horizon (mean
        plus a four-sigma margin), so the trace for a given seed never
        depends on anything downstream.
        """
        if horizon_hours <= 0.0:
            raise ConfigurationError("horizon must be positive")
        rng = make_rng(seed)
        mean = self.arrival_rate_per_hour * horizon_hours
        count = int(math.ceil(mean + 4.0 * math.sqrt(mean + 1.0) + 16.0))
        gaps = rng.exponential(1.0 / self.arrival_rate_per_hour, size=count)
        arrivals = np.cumsum(gaps)
        durations = np.maximum(
            rng.exponential(self.mean_rental_hours, size=count),
            _MIN_RENTAL_HOURS,
        )
        inside = int(np.searchsorted(arrivals, horizon_hours, side="right"))
        if inside == count:
            raise CloudError(
                "churn trace under-draw: the four-sigma margin was "
                "exhausted (astronomically unlikely; check the model)"
            )
        return ChurnTrace(
            arrivals=arrivals[:inside], durations=durations[:inside]
        )

    def draw_count(self, arrivals: int, seed: SeedLike = None) -> ChurnTrace:
        """Draw exactly ``arrivals`` arrivals (benchmark sizing)."""
        if arrivals <= 0:
            raise ConfigurationError("need at least one arrival")
        rng = make_rng(seed)
        gaps = rng.exponential(
            1.0 / self.arrival_rate_per_hour, size=arrivals
        )
        durations = np.maximum(
            rng.exponential(self.mean_rental_hours, size=arrivals),
            _MIN_RENTAL_HOURS,
        )
        return ChurnTrace(arrivals=np.cumsum(gaps), durations=durations)


# ---------------------------------------------------------------------------
# Churn engines
# ---------------------------------------------------------------------------


class _ReferenceChurn:
    """Per-event churn replay: the semantics both engines must share.

    One python-level step per arrival/release against a LIFO stack of
    board ids.  Same-time ties resolve release-before-arrival (a
    returned board is immediately re-rentable -- the paper's rapid
    reallocation race), and an arrival that finds the stack empty is
    dropped along with its release.
    """

    def __init__(self, boards: int, trace: ChurnTrace,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.n_boards = boards
        self.trace = trace
        self.stack: list[int] = list(range(boards))
        self._pending: list[tuple[float, int, int]] = []
        self._pseq = itertools.count()
        self._pos = 0
        self.now_hours = 0.0
        self.events_processed = 0
        self.dropped_arrivals = 0
        self._recorder = recorder
        self._cadence = (recorder.cadence_hours
                         if recorder is not None else math.inf)
        self._gk = 1

    def _grid_sample(self, g: float) -> None:
        """One flight-recorder sample at grid time ``g`` (the sampling
        contract both engines share: churn events with time <= g are
        in, tracked handlers at g are not -- grids are emitted while
        the clock advances, before handlers run)."""
        fill = len(self.stack)
        self._recorder.churn_sample(
            g, fill, self.n_boards - fill,
            self.events_processed, self.dropped_arrivals,
        )

    def advance_to(self, until_hours: float) -> None:
        arrivals = self.trace.arrivals
        durations = self.trace.durations
        n = len(arrivals)
        stack = self.stack
        pending = self._pending
        rec = self._recorder
        cadence = self._cadence
        pos0 = self._pos
        e0 = self.events_processed
        d0 = self.dropped_arrivals
        while True:
            a = arrivals[self._pos] if self._pos < n else math.inf
            r = pending[0][0] if pending else math.inf
            t = a if a < r else r
            if t > until_hours:
                break
            if rec is not None:
                g = self._gk * cadence
                while g < t:
                    self._grid_sample(g)
                    self._gk += 1
                    g = self._gk * cadence
            if r <= a:
                _, _, board = heapq.heappop(pending)
                stack.append(board)
            else:
                self._pos += 1
                if stack:
                    board = stack.pop()
                    heapq.heappush(
                        pending,
                        (a + durations[self._pos - 1],
                         next(self._pseq), board),
                    )
                else:
                    self.dropped_arrivals += 1
            self.events_processed += 1
        if rec is not None:
            g = self._gk * cadence
            while g <= until_hours:
                self._grid_sample(g)
                self._gk += 1
                g = self._gk * cadence
        arrived = self._pos - pos0
        drops = self.dropped_arrivals - d0
        events = self.events_processed - e0
        _inc_churn_counters(
            events, arrived - drops, events - arrived, drops
        )
        self.now_hours = until_hours

    def rent(self) -> Optional[int]:
        return self.stack.pop() if self.stack else None

    def release(self, board: int) -> None:
        self.stack.append(board)

    def available(self) -> int:
        return len(self.stack)

    def free_boards(self) -> list[int]:
        return list(self.stack)


class _BulkChurn:
    """Vectorised window churn engine (see the module docstring).

    State between windows: the free stack (bottom-to-top list of board
    ids) and the pending releases of rentals still running, as sorted
    arrays.  :meth:`advance_to` resolves every churn event in
    ``(now, until]`` with numpy passes instead of a per-event loop.
    """

    def __init__(self, boards: int, trace: ChurnTrace,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.n_boards = boards
        self.trace = trace
        self.stack: list[int] = list(range(boards))
        self._pend_times = np.empty(0, dtype=np.float64)
        self._pend_boards = np.empty(0, dtype=np.intp)
        self._pos = 0
        self.now_hours = 0.0
        self.events_processed = 0
        self.dropped_arrivals = 0
        self._recorder = recorder
        self._cadence = (recorder.cadence_hours
                         if recorder is not None else math.inf)
        self._gk = 1

    def _emit_grids(
        self,
        until_hours: float,
        ts: np.ndarray,
        fill: np.ndarray,
        f0: int,
        e0: int,
        d0: int,
        drop_times: np.ndarray,
    ) -> None:
        """Vectorised flight-recorder sampling for one window.

        Buckets every grid time in ``(now, until]`` against the
        window's sorted event stream with ``searchsorted``; grid times
        are ``k * cadence`` products (never accumulated sums) and the
        high index is comparison-corrected, so the emitted samples are
        bit-identical to the reference engine's scalar walk.
        """
        cadence = self._cadence
        k_lo = self._gk
        k_hi = int(math.floor(until_hours / cadence))
        while k_hi * cadence > until_hours:
            k_hi -= 1
        while (k_hi + 1) * cadence <= until_hours:
            k_hi += 1
        if k_hi < k_lo:
            return
        self._gk = k_hi + 1
        gs = np.arange(k_lo, k_hi + 1, dtype=np.float64) * cadence
        if len(ts):
            idx = np.searchsorted(ts, gs, side="right")
            # fill[idx-1] is the level after the last event <= g; the
            # where() keeps pre-first-event grids at the window's f0
            # without concatenating a window-sized temporary.
            fill_g = np.where(idx > 0, fill[idx - 1], f0)
        else:
            idx = np.zeros(len(gs), dtype=np.intp)
            fill_g = np.full(len(gs), f0, dtype=np.int64)
        dcount = np.searchsorted(drop_times, gs, side="right")
        self._recorder.churn_window(
            gs, fill_g, self.n_boards - fill_g,
            e0 + idx + dcount, d0 + dcount,
        )

    def advance_to(self, until_hours: float) -> None:
        if until_hours < self.now_hours:
            raise CloudError("cannot advance the churn engine backwards")
        trace_ = self.trace
        lo = self._pos
        hi = int(np.searchsorted(trace_.arrivals, until_hours, side="right"))
        self._pos = hi
        a_times = trace_.arrivals[lo:hi]
        r_times = a_times + trace_.durations[lo:hi]
        c_hi = int(np.searchsorted(self._pend_times, until_hours,
                                   side="right"))
        c_times = self._pend_times[:c_hi]
        c_boards = self._pend_boards[:c_hi]
        self._pend_times = self._pend_times[c_hi:]
        self._pend_boards = self._pend_boards[c_hi:]
        e0 = self.events_processed
        d0 = self.dropped_arrivals
        _empty = np.empty(0, dtype=np.float64)
        n_arr = len(a_times)
        if n_arr == 0 and len(c_times) == 0:
            if self._recorder is not None:
                self._emit_grids(until_hours, _empty, _empty,
                                 len(self.stack), e0, d0, _empty)
            self.now_hours = until_hours
            return

        stack_boards = np.asarray(self.stack, dtype=np.intp)
        f0 = len(stack_boards)
        keep = np.ones(n_arr, dtype=bool)
        drops = 0
        # Capacity misses are peeled one at a time (dropping an arrival
        # also removes its release, which can expose the next miss).
        # Windows with heavy drop storms degrade toward O(drops * n);
        # campaign windows are small and the bench scenario is sized
        # drop-free, so this stays off the hot path.
        while True:
            ka = np.nonzero(keep)[0]
            internal = ka[r_times[ka] <= until_hours]
            nc = len(c_times)
            ev_time = np.concatenate(
                [c_times, r_times[internal], a_times[ka]]
            )
            ev_kind = np.concatenate([
                np.zeros(nc + len(internal), dtype=np.int8),
                np.ones(len(ka), dtype=np.int8),
            ])
            ev_ref = np.concatenate([
                -np.arange(nc, dtype=np.int64) - 1,
                internal.astype(np.int64),
                ka.astype(np.int64),
            ])
            order = np.lexsort((ev_ref, ev_kind, ev_time))
            ts = ev_time[order]
            ks = ev_kind[order]
            rs = ev_ref[order]
            pm = np.where(ks == 0, 1, -1)
            fill = f0 + np.cumsum(pm)
            f_before = fill - pm
            bad = (ks == 1) & (f_before == 0)
            if not bad.any():
                break
            keep[rs[int(np.nonzero(bad)[0][0])]] = False
            drops += 1
        self.dropped_arrivals += drops
        drop_times = a_times[~keep]

        n_ev = len(ts)
        self.events_processed += n_ev + drops
        n_rel = int(np.count_nonzero(ks == 0)) if n_ev else 0
        _inc_churn_counters(
            n_ev + drops, n_ev - n_rel, n_rel, drops
        )
        if n_ev == 0:
            if self._recorder is not None:
                self._emit_grids(until_hours, _empty, _empty,
                                 f0, e0, d0, drop_times)
            self.now_hours = until_hours
            return

        # Boundary touched by each event, and time-stable boundary groups.
        b = np.where(ks == 0, f_before, f_before - 1)
        g_order = np.argsort(b, kind="stable")
        gb = b[g_order]
        same = np.empty(n_ev, dtype=bool)
        same[0] = False
        same[1:] = gb[1:] == gb[:-1]
        idx = np.nonzero(same)[0]
        if (ks[g_order[idx]] == ks[g_order[idx - 1]]).any():
            raise CloudError("bulk churn invariant violated: "
                             "non-alternating boundary group")
        prev_stream = np.full(n_ev, -1, dtype=np.int64)
        prev_stream[g_order[idx]] = g_order[idx - 1]

        # Each arrival's board: the preceding release in its group, or
        # the pre-window stack at its boundary.
        arr_pos = np.nonzero(ks == 1)[0]
        arr_idx = rs[arr_pos]
        n_live = len(arr_pos)
        dense = np.full(n_arr, -1, dtype=np.int64)
        dense[arr_idx] = np.arange(n_live)
        parent = np.full(n_live, -1, dtype=np.int64)
        board = np.full(n_live, -1, dtype=np.intp)
        p_stream = prev_stream[arr_pos]
        no_prev = p_stream < 0
        board[no_prev] = stack_boards[b[arr_pos[no_prev]]]
        wi = np.nonzero(~no_prev)[0]
        rel_ref = rs[p_stream[wi]]
        carry = rel_ref < 0
        board[wi[carry]] = c_boards[-rel_ref[carry] - 1]
        parent[wi[~carry]] = dense[rel_ref[~carry]]

        # Pointer-doubling resolution of arrival -> parent-arrival chains.
        resolved = board >= 0
        ptr = parent
        while not resolved.all():
            u = np.nonzero(~resolved)[0]
            tgt = ptr[u]
            if (tgt < 0).any():
                raise CloudError("bulk churn invariant violated: "
                                 "unresolvable arrival chain")
            take = resolved[tgt]
            hit = u[take]
            board[hit] = board[tgt[take]]
            resolved[hit] = True
            miss = u[~take]
            ptr[miss] = ptr[tgt[~take]]

        # Post-window stack: each surviving boundary's last event must
        # be a release; untouched positions keep their old board.
        f_final = f0 + int(pm.sum())
        last_mask = np.empty(n_ev, dtype=bool)
        last_mask[:-1] = gb[:-1] != gb[1:]
        last_mask[-1] = True
        last_stream = g_order[last_mask]
        last_b = gb[last_mask]
        surv = last_b < f_final
        if f_final <= f0:
            new_stack = stack_boards[:f_final].copy()
        else:
            new_stack = np.concatenate([
                stack_boards,
                np.full(f_final - f0, -1, dtype=np.intp),
            ])
        surv_stream = last_stream[surv]
        if (ks[surv_stream] != 0).any():
            raise CloudError("bulk churn invariant violated: "
                             "surviving boundary ends in an arrival")
        srefs = rs[surv_stream]
        sboards = np.empty(len(srefs), dtype=np.intp)
        sc = srefs < 0
        sboards[sc] = c_boards[-srefs[sc] - 1]
        sboards[~sc] = board[dense[srefs[~sc]]]
        new_stack[last_b[surv]] = sboards
        if len(new_stack) and (new_stack < 0).any():
            raise CloudError("bulk churn invariant violated: "
                             "unfilled stack slot")

        # Rentals that outlive the window carry their (now resolved)
        # boards forward as pending releases.
        future = np.nonzero(keep & (r_times > until_hours))[0]
        if len(future):
            f_boards = board[dense[future]]
            times = np.concatenate([self._pend_times, r_times[future]])
            boards_ = np.concatenate([self._pend_boards, f_boards])
            o = np.argsort(times, kind="stable")
            self._pend_times = times[o]
            self._pend_boards = boards_[o]

        if self._recorder is not None:
            self._emit_grids(until_hours, ts, fill, f0, e0, d0, drop_times)
        self.stack = new_stack.tolist()
        self.now_hours = until_hours

    def rent(self) -> Optional[int]:
        return self.stack.pop() if self.stack else None

    def release(self, board: int) -> None:
        self.stack.append(board)

    def available(self) -> int:
        return len(self.stack)

    def free_boards(self) -> list[int]:
        return list(self.stack)


class VirtualRegion:
    """A fleet-sized region: board ids against a pre-drawn churn trace.

    Tracked tenancies (victims, attackers) rent and release through
    this object directly; background churn replays through the chosen
    engine whenever the clock advances.  ``batch_hours`` caps the bulk
    window size -- results are identical for any batching, which the
    campaign reproducibility test pins.
    """

    def __init__(
        self,
        boards: int,
        trace_: ChurnTrace,
        engine: str = "bulk",
        batch_hours: float = math.inf,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        if boards <= 0:
            raise ConfigurationError("a region needs at least one board")
        if batch_hours <= 0.0:
            raise ConfigurationError("batch_hours must be positive")
        if engine == "bulk":
            self._engine: _BulkChurn | _ReferenceChurn = _BulkChurn(
                boards, trace_, recorder=recorder
            )
        elif engine == "reference":
            self._engine = _ReferenceChurn(boards, trace_,
                                           recorder=recorder)
        else:
            raise ConfigurationError(
                f"unknown churn engine {engine!r} "
                "(expected 'bulk' or 'reference')"
            )
        self.engine = engine
        self.boards = boards
        self.batch_hours = float(batch_hours)
        self.recorder = recorder

    @property
    def now_hours(self) -> float:
        return self._engine.now_hours

    @property
    def events_processed(self) -> int:
        return self._engine.events_processed

    @property
    def dropped_arrivals(self) -> int:
        return self._engine.dropped_arrivals

    def advance_to(self, until_hours: float) -> None:
        """Replay churn up to ``until_hours`` in batch-sized windows."""
        now = self._engine.now_hours
        if until_hours < now:
            raise CloudError("cannot advance a region backwards")
        while now < until_hours:
            now = min(now + self.batch_hours, until_hours)
            self._engine.advance_to(now)

    def rent(self) -> Optional[int]:
        """Pop the most recently freed board (LIFO), or ``None``."""
        return self._engine.rent()

    def release(self, board: int) -> None:
        """Return a board to the top of the free stack."""
        self._engine.release(board)

    def available(self) -> int:
        return self._engine.available()

    def free_boards(self) -> list[int]:
        """The free stack, bottom to top (equivalence tests)."""
        return self._engine.free_boards()


# ---------------------------------------------------------------------------
# Lazy board materialisation
# ---------------------------------------------------------------------------


class LazyFleet:
    """Board ids that become real ``FpgaDevice`` objects on first touch.

    Per-board seeds are pre-drawn in one vectorised pass, so board ``k``
    gets the same silicon no matter how many (or in what order) boards
    materialise -- a campaign's physics is identical under both churn
    engines.  By default every board shares one
    :class:`~repro.physics.pool_array.SegmentBtiArray` so cross-device
    bulk catch-up stays available.
    """

    def __init__(
        self,
        part: PartDescriptor = VIRTEX_ULTRASCALE_PLUS,
        size: int = 1024,
        wear: WearProfile = CLOUD_PART,
        seed: SeedLike = None,
        shared_store: bool = True,
    ) -> None:
        if size <= 0:
            raise ConfigurationError("fleet size must be positive")
        self.part = part
        self.size = size
        self.wear = wear
        self._seeds = make_rng(seed).integers(0, 2**63, size=size)
        self._store = SegmentBtiArray() if shared_store else None
        self._devices: dict[int, FpgaDevice] = {}

    def __len__(self) -> int:
        return self.size

    @property
    def materialised(self) -> int:
        """How many boards have been instantiated so far."""
        return len(self._devices)

    def device(self, board: int) -> FpgaDevice:
        """The real device behind a board id (materialising it)."""
        if not 0 <= board < self.size:
            raise CloudError(f"board {board} outside fleet of {self.size}")
        dev = self._devices.get(board)
        if dev is None:
            if self._store is not None:
                dev = FpgaDevice(
                    self.part, wear=self.wear,
                    seed=int(self._seeds[board]),
                    aging_kernel="array", bti_store=self._store,
                )
            else:
                dev = FpgaDevice(
                    self.part, wear=self.wear,
                    seed=int(self._seeds[board]),
                )
            self._devices[board] = dev
        return dev


# ---------------------------------------------------------------------------
# The simulator: fleet + churn + event loop + probe kit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetScenario:
    """Everything a campaign needs to be reproducible from one seed."""

    devices: int = 1024
    horizon_hours: float = 24.0 * 14
    churn: ChurnModel = field(default_factory=ChurnModel)
    part: PartDescriptor = VIRTEX_ULTRASCALE_PLUS
    wear: WearProfile = CLOUD_PART
    routes: int = 8
    route_length_ps: float = 10000.0
    thermal_tick_hours: float = 6.0
    probe_resolution_ps: float = 0.25
    accuracy_threshold: float = 0.75
    seed: int = 1
    engine: str = "bulk"
    batch_hours: float = math.inf


class _RegionClock:
    """Adapts a :class:`VirtualRegion` to the event-loop clock protocol."""

    def __init__(self, region: VirtualRegion) -> None:
        self._region = region

    @property
    def clock_hours(self) -> float:
        return self._region.now_hours

    def advance(self, hours: float) -> None:
        self._region.advance_to(self._region.now_hours + hours)


class FleetSimulator:
    """Shared campaign harness.

    Owns the churn region, the lazy fleet, the route bank the victims
    burn their secrets onto, and the per-board thermal clocks.  All
    randomness comes from named :class:`~repro.rng.RngFactory` streams
    of the scenario seed, so swapping the churn engine or the batch
    size never perturbs a draw.
    """

    def __init__(self, scenario: FleetScenario,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.scenario = scenario
        self.recorder = recorder
        factory = RngFactory(scenario.seed)
        self.rng = factory.stream("campaign")
        self.churn_trace = scenario.churn.draw(
            scenario.horizon_hours, factory.stream("churn")
        )
        self.region = VirtualRegion(
            scenario.devices, self.churn_trace,
            engine=scenario.engine, batch_hours=scenario.batch_hours,
            recorder=recorder,
        )
        self.fleet = LazyFleet(
            scenario.part, scenario.devices, wear=scenario.wear,
            seed=factory.stream("fleet"),
        )
        self.ambient = DataCenterAmbient(seed=factory.stream("ambient"))
        self.routes = build_route_bank(
            scenario.part.make_grid(),
            [scenario.route_length_ps] * scenario.routes,
        )
        self.loop = EventLoop(_RegionClock(self.region),
                              recorder=recorder)
        self._synced: dict[int, float] = {}
        if recorder is not None:
            recorder.add_probe(
                SERIES_AGING_DEBT, self._aging_debt_at,
                help="hours of deferred aging replay outstanding "
                     "across tracked boards",
            )
            recorder.record_origin(scenario.devices)

    # -- aging debt --------------------------------------------------------

    def _aging_debt_at(self, now_hours: float) -> float:
        """Deferred-replay debt at ``now_hours``: the hours of history
        the lazy-aging layer still owes the tracked boards (untracked
        boards carry no analog state, so they owe nothing)."""
        synced = self._synced
        return max(0.0, len(synced) * now_hours - sum(synced.values()))

    def aging_debt_hours(self) -> float:
        """Outstanding aging debt at the current sim clock."""
        return self._aging_debt_at(self.loop.now_hours)

    # -- board thermal clocks ---------------------------------------------

    def _tick_intervals(
        self, t0: float, t1: float
    ) -> list[tuple[float, float]]:
        """(duration, ambient) intervals over deterministic tick
        boundaries -- identical for any engine, since both see the
        same tracked event times."""
        if t1 <= t0:
            return []
        tick = self.scenario.thermal_tick_hours
        out = []
        t = t0
        boundary = math.floor(t0 / tick) * tick + tick
        while boundary < t1:
            out.append((boundary - t, self.ambient.at(t)))
            t = boundary
            boundary += tick
        out.append((t1 - t, self.ambient.at(t)))
        return out

    def sync_board(self, board: int, now_hours: float) -> FpgaDevice:
        """Materialise a board and integrate its history up to now.

        A board touched for the first time has no analog state, so its
        idle past is one O(1) fast-forward; thereafter it replays
        (design loaded or not) over thermal-tick intervals.
        """
        dev = self.fleet.device(board)
        last = self._synced.get(board)
        if last is None:
            if now_hours > 0.0:
                dev.advance_hours(now_hours, self.ambient.at(0.0))
            dev.set_ambient(self.ambient.at(now_hours))
        else:
            for duration, ambient_k in self._tick_intervals(last, now_hours):
                dev.advance_hours(duration, ambient_k)
        self._synced[board] = now_hours
        return dev

    # -- probing -----------------------------------------------------------

    def probe(self, board: int, now_hours: float) -> dict:
        """Read every route's remanent delta on a board.

        A route is *readable* when the delta clears the probe
        resolution; the inferred bit is the delta's sign (a burned-in
        ``1`` slows the route, see the integration suite).
        """
        dev = self.sync_board(board, now_hours)
        deltas = [dev.route_delta_ps(route) for route in self.routes]
        resolution = self.scenario.probe_resolution_ps
        return {
            "board": board,
            "deltas_ps": deltas,
            "bits": [1 if d > 0.0 else 0 for d in deltas],
            "readable": [abs(d) >= resolution for d in deltas],
        }

    def accuracy(self, probe: dict, secret: tuple) -> float:
        """Fraction of secret bits recovered (readable and correct)."""
        hits = sum(
            1
            for bit, ok, want in zip(
                probe["bits"], probe["readable"], secret
            )
            if ok and bit == want
        )
        return hits / len(secret)


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlashAttackPlan:
    """A re-acquisition race: grab boards the instant a victim leaves."""

    victims: int = 4
    burn_hours: float = 48.0
    reaction_hours: float = 0.5
    flash_limit: int = 8
    spacing_hours: float = 24.0
    warmup_hours: float = 12.0


@dataclass(frozen=True)
class ScanPlan:
    """Marketplace scanning: periodically sample the pool for pentimenti."""

    victims: int = 3
    burn_hours: float = 48.0
    spacing_hours: float = 36.0
    warmup_hours: float = 12.0
    scan_every_hours: float = 8.0
    scan_width: int = 6


@dataclass
class CampaignResult:
    """Fleet-level outcome of one attacker campaign."""

    kind: str
    engine: str
    victims_attempted: int
    victims_skipped: int
    recovered: int
    recovery_yield: float
    mean_accuracy: float
    boards_probed: int
    lifecycle_events: int
    tracked_events: int
    dropped_arrivals: int
    details: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "victims_attempted": self.victims_attempted,
            "victims_skipped": self.victims_skipped,
            "recovered": self.recovered,
            "recovery_yield": self.recovery_yield,
            "mean_accuracy": self.mean_accuracy,
            "boards_probed": self.boards_probed,
            "lifecycle_events": self.lifecycle_events,
            "tracked_events": self.tracked_events,
            "dropped_arrivals": self.dropped_arrivals,
            "details": self.details,
        }


class _Victim:
    """One victim tenancy's mutable campaign state."""

    def __init__(self, index: int, secret: tuple) -> None:
        self.index = index
        self.secret = secret
        self.board: Optional[int] = None
        self.released_at: Optional[float] = None
        self.skipped = False
        self.recovered = False
        self.accuracy = 0.0


def _draw_secrets(sim: FleetSimulator, victims: int) -> list[tuple]:
    return [
        tuple(int(b) for b in sim.rng.integers(0, 2, size=sim.scenario.routes))
        for _ in range(victims)
    ]


def _victim_rent(sim: FleetSimulator, victim: _Victim, designs: dict):
    """RENT handler: take a board and burn the secret onto it."""

    def handler(loop: EventLoop, event) -> None:
        board = sim.region.rent()
        if board is None:
            victim.skipped = True
            note_event("fleet.capacity_miss", victim=victim.index)
            return
        victim.board = board
        dev = sim.sync_board(board, loop.now_hours)
        target = build_target_design(
            sim.scenario.part, sim.routes, list(victim.secret),
            heater_dsps=0, name=f"victim{victim.index}",
        )
        designs[victim.index] = target
        dev.load(target.bitstream)

    return handler


def _victim_release(sim: FleetSimulator, victim: _Victim):
    """RELEASE handler: integrate the burn, wipe, return the board."""

    def handler(loop: EventLoop, event) -> None:
        if victim.skipped:
            return
        dev = sim.sync_board(victim.board, loop.now_hours)
        dev.wipe()
        sim.region.release(victim.board)
        victim.released_at = loop.now_hours
        note_event("fleet.victim_released", victim=victim.index,
                   board=victim.board)

    return handler


def _finish(
    sim: FleetSimulator,
    kind: str,
    victims: list[_Victim],
    boards_probed: int,
    details: list,
) -> CampaignResult:
    attempted = [v for v in victims if not v.skipped]
    recovered = sum(1 for v in attempted if v.recovered)
    mean_acc = (
        sum(v.accuracy for v in attempted) / len(attempted)
        if attempted else 0.0
    )
    result = CampaignResult(
        kind=kind,
        engine=sim.region.engine,
        victims_attempted=len(attempted),
        victims_skipped=len(victims) - len(attempted),
        recovered=recovered,
        recovery_yield=recovered / len(attempted) if attempted else 0.0,
        mean_accuracy=mean_acc,
        boards_probed=boards_probed,
        lifecycle_events=sim.region.events_processed,
        tracked_events=sim.loop.events_processed,
        dropped_arrivals=sim.region.dropped_arrivals,
        details=details,
    )
    note_event("fleet.campaign_done", campaign=kind,
               recovery_yield=result.recovery_yield)
    return result


def run_flash_campaign(
    scenario: FleetScenario,
    plan: Optional[FlashAttackPlan] = None,
    recorder: Optional[FlightRecorder] = None,
) -> CampaignResult:
    """A flash re-acquisition race over a churning fleet.

    Each victim burns its secret for ``burn_hours``; the attacker
    reacts ``reaction_hours`` after the release, renting up to
    ``flash_limit`` boards, probing all of them, and keeping the one
    with the most readable routes.  A victim counts as recovered when
    the attacker's best board *is* the victim's board and the read
    accuracy clears the scenario threshold.
    """
    plan = plan or FlashAttackPlan()
    sim = FleetSimulator(scenario, recorder=recorder)
    victims = [
        _Victim(i, secret)
        for i, secret in enumerate(_draw_secrets(sim, plan.victims))
    ]
    designs: dict = {}
    details: list = []
    probed = [0]

    def flash(victim: _Victim):
        def handler(loop: EventLoop, event) -> None:
            if victim.skipped:
                return
            now = loop.now_hours
            count = min(plan.flash_limit, sim.region.available())
            boards = [sim.region.rent() for _ in range(count)]
            probes = [sim.probe(board, now) for board in boards]
            probed[0] += len(boards)
            # The attacker harvests a candidate secret from every
            # flashed board (stale pentimenti from earlier tenants are
            # among them); the race is won when the victim's own board
            # was re-acquired and its imprint decodes.
            hit = next(
                (p for p in probes if p["board"] == victim.board), None
            )
            if hit is not None:
                victim.accuracy = sim.accuracy(hit, victim.secret)
                victim.recovered = (
                    victim.accuracy >= scenario.accuracy_threshold
                )
            details.append({
                "victim": victim.index,
                "victim_board": victim.board,
                "reacquired": hit is not None,
                "accuracy": victim.accuracy,
                "recovered": victim.recovered,
                "boards_flashed": len(boards),
            })
            # Zero-hour rentals: probed boards go straight back.
            for board in boards:
                sim.region.release(board)
            if recorder is not None:
                recorder.sample_rate(
                    SERIES_BOARDS_PROBED, now, probed[0],
                    help="cumulative boards the attacker has probed",
                )
                recorder.sample(
                    SERIES_RECOVERY_YIELD, now,
                    sum(1 for v in victims if v.recovered) / len(victims),
                    help="fraction of victims recovered so far",
                )

        return handler

    note_phase("fleet.flash", total=plan.victims,
               devices=scenario.devices, engine=scenario.engine,
               sim_total_hours=scenario.horizon_hours)
    with trace.span("fleet.campaign", kind="flash",
                    engine=scenario.engine):
        for victim in victims:
            start = plan.warmup_hours + victim.index * (
                plan.burn_hours + plan.spacing_hours
            )
            end = start + plan.burn_hours
            sim.loop.schedule(start, EventKind.RENT,
                              _victim_rent(sim, victim, designs))
            sim.loop.schedule(end, EventKind.RELEASE,
                              _victim_release(sim, victim))
            sim.loop.schedule(end + plan.reaction_hours, EventKind.SCAN,
                              flash(victim))
        sim.loop.run(until_hours=scenario.horizon_hours)
    return _finish(sim, "flash", victims, probed[0], details)


def run_scan_campaign(
    scenario: FleetScenario,
    plan: Optional[ScanPlan] = None,
    recorder: Optional[FlightRecorder] = None,
) -> CampaignResult:
    """Marketplace scanning: periodic pool sampling for pentimenti.

    The attacker rents ``scan_width`` boards every
    ``scan_every_hours``, probes them, and releases them immediately.
    A victim is recovered when any post-release scan lands on their
    board and reads the secret above the accuracy threshold.
    """
    plan = plan or ScanPlan()
    sim = FleetSimulator(scenario, recorder=recorder)
    victims = [
        _Victim(i, secret)
        for i, secret in enumerate(_draw_secrets(sim, plan.victims))
    ]
    designs: dict = {}
    details: list = []
    probed = [0]
    by_board: dict[int, _Victim] = {}

    def release_and_index(victim: _Victim):
        inner = _victim_release(sim, victim)

        def handler(loop: EventLoop, event) -> None:
            inner(loop, event)
            if not victim.skipped:
                by_board[victim.board] = victim

        return handler

    def scan(loop: EventLoop, event) -> None:
        now = loop.now_hours
        count = min(plan.scan_width, sim.region.available())
        boards = [sim.region.rent() for _ in range(count)]
        for board in boards:
            probe = sim.probe(board, now)
            probed[0] += 1
            victim = by_board.get(board)
            if victim is not None and not victim.recovered:
                accuracy = sim.accuracy(probe, victim.secret)
                victim.accuracy = max(victim.accuracy, accuracy)
                if accuracy >= scenario.accuracy_threshold:
                    victim.recovered = True
                    details.append({
                        "victim": victim.index,
                        "board": board,
                        "scan_hours": now,
                        "accuracy": accuracy,
                    })
                    note_event("fleet.scan_hit", victim=victim.index,
                               board=board)
        for board in boards:
            sim.region.release(board)
        if recorder is not None:
            recorder.sample_rate(
                SERIES_BOARDS_PROBED, now, probed[0],
                help="cumulative boards the attacker has probed",
            )
            recorder.sample(
                SERIES_RECOVERY_YIELD, now,
                sum(1 for v in victims if v.recovered) / len(victims),
                help="fraction of victims recovered so far",
            )

    note_phase("fleet.scan", total=plan.victims,
               devices=scenario.devices, engine=scenario.engine,
               sim_total_hours=scenario.horizon_hours)
    with trace.span("fleet.campaign", kind="scan",
                    engine=scenario.engine):
        for victim in victims:
            start = plan.warmup_hours + victim.index * (
                plan.burn_hours + plan.spacing_hours
            )
            sim.loop.schedule(start, EventKind.RENT,
                              _victim_rent(sim, victim, designs))
            sim.loop.schedule(start + plan.burn_hours, EventKind.RELEASE,
                              release_and_index(victim))
        t = plan.warmup_hours
        while t < scenario.horizon_hours:
            sim.loop.schedule(t, EventKind.SCAN, scan)
            t += plan.scan_every_hours
        sim.loop.run(until_hours=scenario.horizon_hours)
    return _finish(sim, "scan", victims, probed[0], details)


# ---------------------------------------------------------------------------
# Throughput benchmark entry point
# ---------------------------------------------------------------------------


def run_churn_benchmark(
    devices: int = 100_000,
    arrivals: int = 500_000,
    seed: int = 0,
    engine: str = "bulk",
    batch_hours: float = math.inf,
    arrival_rate_per_hour: float = 60.0,
    mean_rental_hours: Optional[float] = None,
    recorder: Optional[FlightRecorder] = None,
) -> dict:
    """Time a pure-churn fleet scenario; the BENCH_fleet workload.

    Mean concurrency is sized to half the fleet so the run is
    drop-free, making the lifecycle event count exactly
    ``2 * arrivals``.
    """
    if mean_rental_hours is None:
        mean_rental_hours = devices / (2.0 * arrival_rate_per_hour)
    model = ChurnModel(
        arrival_rate_per_hour=arrival_rate_per_hour,
        mean_rental_hours=mean_rental_hours,
    )
    trace_ = model.draw_count(arrivals, seed)
    region = VirtualRegion(
        devices, trace_, engine=engine, batch_hours=batch_hours,
        recorder=recorder,
    )
    if recorder is not None:
        recorder.record_origin(devices)
    horizon = float(trace_.arrivals[-1] + trace_.durations.max() + 1.0)
    start = perf_counter()
    region.advance_to(horizon)
    elapsed = perf_counter() - start
    events = region.events_processed
    return {
        "devices": devices,
        "arrivals": arrivals,
        "engine": engine,
        "events": events,
        "dropped_arrivals": region.dropped_arrivals,
        "seconds": elapsed,
        "events_per_second": events / elapsed if elapsed > 0 else 0.0,
        "final_free": region.available(),
    }
