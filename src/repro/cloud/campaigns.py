"""Attacker campaigns over a fleet-scale churn simulation.

The paper's threat is a *fleet* property: which boards an attacker can
re-acquire, how often they are wiped, how much background tenant churn
shuffles the free pool.  This module simulates a provider-sized fleet
(100k boards, millions of rent/release events per simulated year) by
splitting the simulation into two coupled layers:

* **Churn** -- the background tenant population.  Arrivals and rental
  durations are drawn *up front* into a :class:`ChurnTrace` (so the
  randomness is independent of how the simulation is batched), and a
  churn engine replays them against a LIFO free stack.  Two engines
  exist: a per-event reference (:class:`_ReferenceChurn`, the obviously
  correct one) and a vectorised window engine (:class:`_BulkChurn`)
  that resolves an entire batch of events with a handful of numpy
  passes.  They are pinned identical by tests; the bulk engine is what
  sustains the >1M lifecycle-events/sec bench floor.

* **Tracked boards** -- the handful of boards an attacker or victim
  actually touches.  Those materialise as real
  :class:`~repro.fabric.device.FpgaDevice` instances on first contact
  (:class:`LazyFleet`), and integrate ambient/thermal history over
  deterministic tick boundaries, so the full BTI physics runs only
  where it matters.

Campaigns (:func:`run_flash_campaign`, :func:`run_scan_campaign`)
schedule victims and attacker actions on the
:class:`~repro.cloud.events.EventLoop` and report fleet-level
**recovery yield**: the fraction of victims whose secret an attacker
recovered from remanent delay shifts.

Bulk-engine mechanics (for the maintainer)
------------------------------------------

Within one window the free stack only ever changes at its top.  Each
event therefore touches exactly one stack *boundary*: an arrival at
fill level ``f`` pops position ``f - 1``; a release at fill ``f``
pushes position ``f``.  Grouping the window's events by boundary (a
stable argsort), events within a group strictly alternate pop/push, so
each arrival's board is either the board pushed by the group's
immediately preceding release, or -- when there is none -- the board
sitting at that position in the pre-window stack.  That turns board
assignment into parent pointers between arrivals, resolved in
O(log chain) pointer-doubling passes, and the post-window stack is
read off each boundary group's last event.  Capacity misses (an
arrival finding an empty stack) are peeled off one at a time, exactly
as the reference engine drops them.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.errors import CapacityError, CloudError, ConfigurationError
from repro.cloud.events import EventKind, EventLoop
from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import PartDescriptor, VIRTEX_ULTRASCALE_PLUS
from repro.fabric.thermal import DataCenterAmbient
from repro.observability import trace
from repro.observability.metrics import registry
from repro.observability.progress import (
    note_event,
    note_phase,
    note_seed_done,
)
from repro.observability.timeseries import (
    SERIES_AGING_DEBT,
    SERIES_BOARDS_PROBED,
    SERIES_FAILED_WIPES,
    SERIES_FAULTS,
    SERIES_RECOVERY_YIELD,
    FlightRecorder,
)
from repro.physics.aging import CLOUD_PART, WearProfile
from repro.physics.pool_array import SegmentBtiArray
from repro.reliability.fleet_chaos import (
    FleetFaultPlan,
    derive_fleet_plan_seed,
    note_fleet_fault,
)
from repro.reliability.retry import get_retry_policy, note_retry
from repro.rng import RngFactory, SeedLike, make_rng

__all__ = [
    "ChurnModel",
    "ChurnTrace",
    "VirtualRegion",
    "LazyFleet",
    "FleetScenario",
    "FleetSimulator",
    "FlashAttackPlan",
    "ScanPlan",
    "CampaignResult",
    "FleetSweepResult",
    "run_flash_campaign",
    "run_scan_campaign",
    "run_fleet_sweep",
    "fleet_journal_context",
    "run_churn_benchmark",
]

#: Rental durations are clamped above zero so a release can never sort
#: before its own arrival (the engines order same-time events
#: release-first).
_MIN_RENTAL_HOURS = 1e-9


def _inc_churn_counters(events: int, rents: int,
                        releases: int, drops: int) -> None:
    """Fold one churn advance into the registry's fleet counters.

    Both engines call this with per-advance deltas, so the counter
    *values* agree exactly between the reference and bulk engines (the
    satellite equality test pins this).
    """
    if events:
        registry.counter(
            "fleet_events_total",
            "discrete events dispatched by event loops",
        ).inc(events)
    if rents:
        registry.counter(
            "fleet_events_rent_total",
            "RENT events across loop dispatch and churn",
        ).inc(rents)
    if releases:
        registry.counter(
            "fleet_events_release_total",
            "RELEASE events across loop dispatch and churn",
        ).inc(releases)
    if drops:
        registry.counter(
            "fleet_events_dropped_total",
            "arrivals dropped by capacity misses",
        ).inc(drops)


# ---------------------------------------------------------------------------
# Churn model: all randomness drawn up front
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnTrace:
    """A pre-drawn background-tenant schedule.

    ``arrivals`` is sorted ascending; ``durations`` aligns with it.
    Drawing the whole trace before the simulation starts is what makes
    runs reproducible *regardless of event-batch size*: windowing the
    simulation only slices this trace, it never draws.
    """

    arrivals: np.ndarray
    durations: np.ndarray

    def __post_init__(self) -> None:
        if len(self.arrivals) != len(self.durations):
            raise ConfigurationError("arrivals and durations must align")

    def __len__(self) -> int:
        return len(self.arrivals)


@dataclass(frozen=True)
class ChurnModel:
    """Poisson tenant arrivals with exponential rental durations."""

    arrival_rate_per_hour: float = 50.0
    mean_rental_hours: float = 12.0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_hour <= 0.0:
            raise ConfigurationError("arrival rate must be positive")
        if self.mean_rental_hours <= 0.0:
            raise ConfigurationError("mean rental must be positive")

    def draw(self, horizon_hours: float, seed: SeedLike = None) -> ChurnTrace:
        """Draw every arrival in ``[0, horizon)`` in one vectorised pass.

        The draw count is a deterministic function of the horizon (mean
        plus a four-sigma margin), so the trace for a given seed never
        depends on anything downstream.
        """
        if horizon_hours <= 0.0:
            raise ConfigurationError("horizon must be positive")
        rng = make_rng(seed)
        mean = self.arrival_rate_per_hour * horizon_hours
        count = int(math.ceil(mean + 4.0 * math.sqrt(mean + 1.0) + 16.0))
        gaps = rng.exponential(1.0 / self.arrival_rate_per_hour, size=count)
        arrivals = np.cumsum(gaps)
        durations = np.maximum(
            rng.exponential(self.mean_rental_hours, size=count),
            _MIN_RENTAL_HOURS,
        )
        inside = int(np.searchsorted(arrivals, horizon_hours, side="right"))
        if inside == count:
            raise CloudError(
                "churn trace under-draw: the four-sigma margin was "
                "exhausted (astronomically unlikely; check the model)"
            )
        return ChurnTrace(
            arrivals=arrivals[:inside], durations=durations[:inside]
        )

    def draw_count(self, arrivals: int, seed: SeedLike = None) -> ChurnTrace:
        """Draw exactly ``arrivals`` arrivals (benchmark sizing)."""
        if arrivals <= 0:
            raise ConfigurationError("need at least one arrival")
        rng = make_rng(seed)
        gaps = rng.exponential(
            1.0 / self.arrival_rate_per_hour, size=arrivals
        )
        durations = np.maximum(
            rng.exponential(self.mean_rental_hours, size=arrivals),
            _MIN_RENTAL_HOURS,
        )
        return ChurnTrace(arrivals=np.cumsum(gaps), durations=durations)


# ---------------------------------------------------------------------------
# Churn engines
# ---------------------------------------------------------------------------


class _ReferenceChurn:
    """Per-event churn replay: the semantics both engines must share.

    One python-level step per arrival/release against a LIFO stack of
    board ids.  Same-time ties resolve release-before-arrival (a
    returned board is immediately re-rentable -- the paper's rapid
    reallocation race), and an arrival that finds the stack empty is
    dropped along with its release.
    """

    def __init__(self, boards: int, trace: ChurnTrace,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.n_boards = boards
        self.trace = trace
        self.stack: list[int] = list(range(boards))
        self._pending: list[tuple[float, int, int]] = []
        self._pseq = itertools.count()
        self._pos = 0
        self.now_hours = 0.0
        self.events_processed = 0
        self.dropped_arrivals = 0
        self._recorder = recorder
        self._cadence = (recorder.cadence_hours
                         if recorder is not None else math.inf)
        self._gk = 1

    def _grid_sample(self, g: float) -> None:
        """One flight-recorder sample at grid time ``g`` (the sampling
        contract both engines share: churn events with time <= g are
        in, tracked handlers at g are not -- grids are emitted while
        the clock advances, before handlers run)."""
        fill = len(self.stack)
        self._recorder.churn_sample(
            g, fill, self.n_boards - fill,
            self.events_processed, self.dropped_arrivals,
        )

    def advance_to(self, until_hours: float) -> None:
        arrivals = self.trace.arrivals
        durations = self.trace.durations
        n = len(arrivals)
        stack = self.stack
        pending = self._pending
        rec = self._recorder
        cadence = self._cadence
        pos0 = self._pos
        e0 = self.events_processed
        d0 = self.dropped_arrivals
        while True:
            a = arrivals[self._pos] if self._pos < n else math.inf
            r = pending[0][0] if pending else math.inf
            t = a if a < r else r
            if t > until_hours:
                break
            if rec is not None:
                g = self._gk * cadence
                while g < t:
                    self._grid_sample(g)
                    self._gk += 1
                    g = self._gk * cadence
            if r <= a:
                _, _, board = heapq.heappop(pending)
                stack.append(board)
            else:
                self._pos += 1
                if stack:
                    board = stack.pop()
                    heapq.heappush(
                        pending,
                        (a + durations[self._pos - 1],
                         next(self._pseq), board),
                    )
                else:
                    self.dropped_arrivals += 1
            self.events_processed += 1
        if rec is not None:
            g = self._gk * cadence
            while g <= until_hours:
                self._grid_sample(g)
                self._gk += 1
                g = self._gk * cadence
        arrived = self._pos - pos0
        drops = self.dropped_arrivals - d0
        events = self.events_processed - e0
        _inc_churn_counters(
            events, arrived - drops, events - arrived, drops
        )
        self.now_hours = until_hours

    def rent(self) -> Optional[int]:
        return self.stack.pop() if self.stack else None

    def release(self, board: int) -> None:
        self.stack.append(board)

    def available(self) -> int:
        return len(self.stack)

    def free_boards(self) -> list[int]:
        return list(self.stack)


class _BulkChurn:
    """Vectorised window churn engine (see the module docstring).

    State between windows: the free stack (bottom-to-top list of board
    ids) and the pending releases of rentals still running, as sorted
    arrays.  :meth:`advance_to` resolves every churn event in
    ``(now, until]`` with numpy passes instead of a per-event loop.
    """

    def __init__(self, boards: int, trace: ChurnTrace,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.n_boards = boards
        self.trace = trace
        self.stack: list[int] = list(range(boards))
        self._pend_times = np.empty(0, dtype=np.float64)
        self._pend_boards = np.empty(0, dtype=np.intp)
        self._pos = 0
        self.now_hours = 0.0
        self.events_processed = 0
        self.dropped_arrivals = 0
        self._recorder = recorder
        self._cadence = (recorder.cadence_hours
                         if recorder is not None else math.inf)
        self._gk = 1

    def _emit_grids(
        self,
        until_hours: float,
        ts: np.ndarray,
        fill: np.ndarray,
        f0: int,
        e0: int,
        d0: int,
        drop_times: np.ndarray,
    ) -> None:
        """Vectorised flight-recorder sampling for one window.

        Buckets every grid time in ``(now, until]`` against the
        window's sorted event stream with ``searchsorted``; grid times
        are ``k * cadence`` products (never accumulated sums) and the
        high index is comparison-corrected, so the emitted samples are
        bit-identical to the reference engine's scalar walk.
        """
        cadence = self._cadence
        k_lo = self._gk
        k_hi = int(math.floor(until_hours / cadence))
        while k_hi * cadence > until_hours:
            k_hi -= 1
        while (k_hi + 1) * cadence <= until_hours:
            k_hi += 1
        if k_hi < k_lo:
            return
        self._gk = k_hi + 1
        gs = np.arange(k_lo, k_hi + 1, dtype=np.float64) * cadence
        if len(ts):
            idx = np.searchsorted(ts, gs, side="right")
            # fill[idx-1] is the level after the last event <= g; the
            # where() keeps pre-first-event grids at the window's f0
            # without concatenating a window-sized temporary.
            fill_g = np.where(idx > 0, fill[idx - 1], f0)
        else:
            idx = np.zeros(len(gs), dtype=np.intp)
            fill_g = np.full(len(gs), f0, dtype=np.int64)
        dcount = np.searchsorted(drop_times, gs, side="right")
        self._recorder.churn_window(
            gs, fill_g, self.n_boards - fill_g,
            e0 + idx + dcount, d0 + dcount,
        )

    def advance_to(self, until_hours: float) -> None:
        if until_hours < self.now_hours:
            raise CloudError("cannot advance the churn engine backwards")
        trace_ = self.trace
        lo = self._pos
        hi = int(np.searchsorted(trace_.arrivals, until_hours, side="right"))
        self._pos = hi
        a_times = trace_.arrivals[lo:hi]
        r_times = a_times + trace_.durations[lo:hi]
        c_hi = int(np.searchsorted(self._pend_times, until_hours,
                                   side="right"))
        c_times = self._pend_times[:c_hi]
        c_boards = self._pend_boards[:c_hi]
        self._pend_times = self._pend_times[c_hi:]
        self._pend_boards = self._pend_boards[c_hi:]
        e0 = self.events_processed
        d0 = self.dropped_arrivals
        _empty = np.empty(0, dtype=np.float64)
        n_arr = len(a_times)
        if n_arr == 0 and len(c_times) == 0:
            if self._recorder is not None:
                self._emit_grids(until_hours, _empty, _empty,
                                 len(self.stack), e0, d0, _empty)
            self.now_hours = until_hours
            return

        stack_boards = np.asarray(self.stack, dtype=np.intp)
        f0 = len(stack_boards)
        keep = np.ones(n_arr, dtype=bool)
        drops = 0
        # Capacity misses are peeled one at a time (dropping an arrival
        # also removes its release, which can expose the next miss).
        # Windows with heavy drop storms degrade toward O(drops * n);
        # campaign windows are small and the bench scenario is sized
        # drop-free, so this stays off the hot path.
        while True:
            ka = np.nonzero(keep)[0]
            internal = ka[r_times[ka] <= until_hours]
            nc = len(c_times)
            ev_time = np.concatenate(
                [c_times, r_times[internal], a_times[ka]]
            )
            ev_kind = np.concatenate([
                np.zeros(nc + len(internal), dtype=np.int8),
                np.ones(len(ka), dtype=np.int8),
            ])
            # Carried-in pending releases keep ascending refs (position
            # minus nc, all negative) so same-time ties resolve in
            # rental-start order -- exactly the reference engine's heap
            # tie-break.  Mass ties are real under a fault plan: a
            # preemption storm truncates every spanning rental to the
            # same instant.
            ev_ref = np.concatenate([
                np.arange(nc, dtype=np.int64) - nc,
                internal.astype(np.int64),
                ka.astype(np.int64),
            ])
            order = np.lexsort((ev_ref, ev_kind, ev_time))
            ts = ev_time[order]
            ks = ev_kind[order]
            rs = ev_ref[order]
            pm = np.where(ks == 0, 1, -1)
            fill = f0 + np.cumsum(pm)
            f_before = fill - pm
            bad = (ks == 1) & (f_before == 0)
            if not bad.any():
                break
            keep[rs[int(np.nonzero(bad)[0][0])]] = False
            drops += 1
        self.dropped_arrivals += drops
        drop_times = a_times[~keep]

        n_ev = len(ts)
        self.events_processed += n_ev + drops
        n_rel = int(np.count_nonzero(ks == 0)) if n_ev else 0
        _inc_churn_counters(
            n_ev + drops, n_ev - n_rel, n_rel, drops
        )
        if n_ev == 0:
            if self._recorder is not None:
                self._emit_grids(until_hours, _empty, _empty,
                                 f0, e0, d0, drop_times)
            self.now_hours = until_hours
            return

        # Boundary touched by each event, and time-stable boundary groups.
        b = np.where(ks == 0, f_before, f_before - 1)
        g_order = np.argsort(b, kind="stable")
        gb = b[g_order]
        same = np.empty(n_ev, dtype=bool)
        same[0] = False
        same[1:] = gb[1:] == gb[:-1]
        idx = np.nonzero(same)[0]
        if (ks[g_order[idx]] == ks[g_order[idx - 1]]).any():
            raise CloudError("bulk churn invariant violated: "
                             "non-alternating boundary group")
        prev_stream = np.full(n_ev, -1, dtype=np.int64)
        prev_stream[g_order[idx]] = g_order[idx - 1]

        # Each arrival's board: the preceding release in its group, or
        # the pre-window stack at its boundary.
        arr_pos = np.nonzero(ks == 1)[0]
        arr_idx = rs[arr_pos]
        n_live = len(arr_pos)
        dense = np.full(n_arr, -1, dtype=np.int64)
        dense[arr_idx] = np.arange(n_live)
        parent = np.full(n_live, -1, dtype=np.int64)
        board = np.full(n_live, -1, dtype=np.intp)
        p_stream = prev_stream[arr_pos]
        no_prev = p_stream < 0
        board[no_prev] = stack_boards[b[arr_pos[no_prev]]]
        wi = np.nonzero(~no_prev)[0]
        rel_ref = rs[p_stream[wi]]
        carry = rel_ref < 0
        board[wi[carry]] = c_boards[rel_ref[carry] + nc]
        parent[wi[~carry]] = dense[rel_ref[~carry]]

        # Pointer-doubling resolution of arrival -> parent-arrival chains.
        resolved = board >= 0
        ptr = parent
        while not resolved.all():
            u = np.nonzero(~resolved)[0]
            tgt = ptr[u]
            if (tgt < 0).any():
                raise CloudError("bulk churn invariant violated: "
                                 "unresolvable arrival chain")
            take = resolved[tgt]
            hit = u[take]
            board[hit] = board[tgt[take]]
            resolved[hit] = True
            miss = u[~take]
            ptr[miss] = ptr[tgt[~take]]

        # Post-window stack: each surviving boundary's last event must
        # be a release; untouched positions keep their old board.
        f_final = f0 + int(pm.sum())
        last_mask = np.empty(n_ev, dtype=bool)
        last_mask[:-1] = gb[:-1] != gb[1:]
        last_mask[-1] = True
        last_stream = g_order[last_mask]
        last_b = gb[last_mask]
        surv = last_b < f_final
        if f_final <= f0:
            new_stack = stack_boards[:f_final].copy()
        else:
            new_stack = np.concatenate([
                stack_boards,
                np.full(f_final - f0, -1, dtype=np.intp),
            ])
        surv_stream = last_stream[surv]
        if (ks[surv_stream] != 0).any():
            raise CloudError("bulk churn invariant violated: "
                             "surviving boundary ends in an arrival")
        srefs = rs[surv_stream]
        sboards = np.empty(len(srefs), dtype=np.intp)
        sc = srefs < 0
        sboards[sc] = c_boards[srefs[sc] + nc]
        sboards[~sc] = board[dense[srefs[~sc]]]
        new_stack[last_b[surv]] = sboards
        if len(new_stack) and (new_stack < 0).any():
            raise CloudError("bulk churn invariant violated: "
                             "unfilled stack slot")

        # Rentals that outlive the window carry their (now resolved)
        # boards forward as pending releases.
        future = np.nonzero(keep & (r_times > until_hours))[0]
        if len(future):
            f_boards = board[dense[future]]
            times = np.concatenate([self._pend_times, r_times[future]])
            boards_ = np.concatenate([self._pend_boards, f_boards])
            o = np.argsort(times, kind="stable")
            self._pend_times = times[o]
            self._pend_boards = boards_[o]

        if self._recorder is not None:
            self._emit_grids(until_hours, ts, fill, f0, e0, d0, drop_times)
        self.stack = new_stack.tolist()
        self.now_hours = until_hours

    def rent(self) -> Optional[int]:
        return self.stack.pop() if self.stack else None

    def release(self, board: int) -> None:
        self.stack.append(board)

    def available(self) -> int:
        return len(self.stack)

    def free_boards(self) -> list[int]:
        return list(self.stack)


class VirtualRegion:
    """A fleet-sized region: board ids against a pre-drawn churn trace.

    Tracked tenancies (victims, attackers) rent and release through
    this object directly; background churn replays through the chosen
    engine whenever the clock advances.  ``batch_hours`` caps the bulk
    window size -- results are identical for any batching, which the
    campaign reproducibility test pins.
    """

    def __init__(
        self,
        boards: int,
        trace_: ChurnTrace,
        engine: str = "bulk",
        batch_hours: float = math.inf,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        if boards <= 0:
            raise ConfigurationError("a region needs at least one board")
        if batch_hours <= 0.0:
            raise ConfigurationError("batch_hours must be positive")
        if engine == "bulk":
            self._engine: _BulkChurn | _ReferenceChurn = _BulkChurn(
                boards, trace_, recorder=recorder
            )
        elif engine == "reference":
            self._engine = _ReferenceChurn(boards, trace_,
                                           recorder=recorder)
        else:
            raise ConfigurationError(
                f"unknown churn engine {engine!r} "
                "(expected 'bulk' or 'reference')"
            )
        self.engine = engine
        self.boards = boards
        self.batch_hours = float(batch_hours)
        self.recorder = recorder

    @property
    def now_hours(self) -> float:
        return self._engine.now_hours

    @property
    def events_processed(self) -> int:
        return self._engine.events_processed

    @property
    def dropped_arrivals(self) -> int:
        return self._engine.dropped_arrivals

    def advance_to(self, until_hours: float) -> None:
        """Replay churn up to ``until_hours`` in batch-sized windows."""
        now = self._engine.now_hours
        if until_hours < now:
            raise CloudError("cannot advance a region backwards")
        while now < until_hours:
            now = min(now + self.batch_hours, until_hours)
            self._engine.advance_to(now)

    def rent(self) -> Optional[int]:
        """Pop the most recently freed board (LIFO), or ``None``."""
        return self._engine.rent()

    def release(self, board: int) -> None:
        """Return a board to the top of the free stack."""
        self._engine.release(board)

    def available(self) -> int:
        return self._engine.available()

    def free_boards(self) -> list[int]:
        """The free stack, bottom to top (equivalence tests)."""
        return self._engine.free_boards()

    def retire_free(self, positions: Sequence[int]) -> list[int]:
        """Permanently remove free-stack entries by position.

        ``positions`` index :meth:`free_boards` bottom-to-top and must
        arrive descending so each pop leaves lower positions valid
        (:meth:`FleetFaultPlan.retire_positions` returns them that
        way).  Retirement is a hard failure, not a rental: the region's
        board count shrinks, so the in-flight series
        (``n_boards - fill``) stays truthful.  Returns the retired
        board ids.
        """
        stack = self._engine.stack
        removed = []
        for pos in positions:
            if not 0 <= int(pos) < len(stack):
                raise CloudError(
                    f"cannot retire free-stack position {pos}: only "
                    f"{len(stack)} boards are free"
                )
            removed.append(stack.pop(int(pos)))
        self._engine.n_boards -= len(removed)
        self.boards -= len(removed)
        return removed


# ---------------------------------------------------------------------------
# Lazy board materialisation
# ---------------------------------------------------------------------------


class LazyFleet:
    """Board ids that become real ``FpgaDevice`` objects on first touch.

    Per-board seeds are pre-drawn in one vectorised pass, so board ``k``
    gets the same silicon no matter how many (or in what order) boards
    materialise -- a campaign's physics is identical under both churn
    engines.  By default every board shares one
    :class:`~repro.physics.pool_array.SegmentBtiArray` so cross-device
    bulk catch-up stays available.
    """

    def __init__(
        self,
        part: PartDescriptor = VIRTEX_ULTRASCALE_PLUS,
        size: int = 1024,
        wear: WearProfile = CLOUD_PART,
        seed: SeedLike = None,
        shared_store: bool = True,
    ) -> None:
        if size <= 0:
            raise ConfigurationError("fleet size must be positive")
        self.part = part
        self.size = size
        self.wear = wear
        self._seeds = make_rng(seed).integers(0, 2**63, size=size)
        self._store = SegmentBtiArray() if shared_store else None
        self._devices: dict[int, FpgaDevice] = {}

    def __len__(self) -> int:
        return self.size

    @property
    def materialised(self) -> int:
        """How many boards have been instantiated so far."""
        return len(self._devices)

    def device(self, board: int) -> FpgaDevice:
        """The real device behind a board id (materialising it)."""
        if not 0 <= board < self.size:
            raise CloudError(f"board {board} outside fleet of {self.size}")
        dev = self._devices.get(board)
        if dev is None:
            if self._store is not None:
                dev = FpgaDevice(
                    self.part, wear=self.wear,
                    seed=int(self._seeds[board]),
                    aging_kernel="array", bti_store=self._store,
                )
            else:
                dev = FpgaDevice(
                    self.part, wear=self.wear,
                    seed=int(self._seeds[board]),
                )
            self._devices[board] = dev
        return dev


# ---------------------------------------------------------------------------
# The simulator: fleet + churn + event loop + probe kit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetScenario:
    """Everything a campaign needs to be reproducible from one seed."""

    devices: int = 1024
    horizon_hours: float = 24.0 * 14
    churn: ChurnModel = field(default_factory=ChurnModel)
    part: PartDescriptor = VIRTEX_ULTRASCALE_PLUS
    wear: WearProfile = CLOUD_PART
    routes: int = 8
    route_length_ps: float = 10000.0
    thermal_tick_hours: float = 6.0
    probe_resolution_ps: float = 0.25
    accuracy_threshold: float = 0.75
    seed: int = 1
    engine: str = "bulk"
    batch_hours: float = math.inf


class _RegionClock:
    """Adapts a :class:`VirtualRegion` to the event-loop clock protocol."""

    def __init__(self, region: VirtualRegion) -> None:
        self._region = region

    @property
    def clock_hours(self) -> float:
        return self._region.now_hours

    def advance(self, hours: float) -> None:
        self._region.advance_to(self._region.now_hours + hours)


class FleetSimulator:
    """Shared campaign harness.

    Owns the churn region, the lazy fleet, the route bank the victims
    burn their secrets onto, and the per-board thermal clocks.  All
    randomness comes from named :class:`~repro.rng.RngFactory` streams
    of the scenario seed, so swapping the churn engine or the batch
    size never perturbs a draw.
    """

    def __init__(self, scenario: FleetScenario,
                 recorder: Optional[FlightRecorder] = None,
                 fault_plan: Optional[FleetFaultPlan] = None) -> None:
        self.scenario = scenario
        self.recorder = recorder
        # A fresh copy keeps the caller's plan unconsumed: every run
        # starts from pristine RNG streams and an empty ledger, so the
        # same plan object can drive reference and bulk runs to the
        # same bytes.
        self.faults = fault_plan.fresh() if fault_plan is not None else None
        factory = RngFactory(scenario.seed)
        self.rng = factory.stream("campaign")
        self.churn_trace = scenario.churn.draw(
            scenario.horizon_hours, factory.stream("churn")
        )
        if self.faults is not None:
            # Churn-level faults are one pure array transform on the
            # pre-drawn trace -- applied before either engine exists,
            # which is what makes them engine- and batch-invariant.
            arrivals, durations, dropped, truncated = (
                self.faults.transform_churn(
                    self.churn_trace.arrivals,
                    self.churn_trace.durations,
                    min_rental_hours=_MIN_RENTAL_HOURS,
                )
            )
            if dropped or truncated:
                self.churn_trace = ChurnTrace(
                    arrivals=arrivals, durations=durations
                )
                note_event("fleet.churn_faulted", dropped=dropped,
                           truncated=truncated)
        self.region = VirtualRegion(
            scenario.devices, self.churn_trace,
            engine=scenario.engine, batch_hours=scenario.batch_hours,
            recorder=recorder,
        )
        self.fleet = LazyFleet(
            scenario.part, scenario.devices, wear=scenario.wear,
            seed=factory.stream("fleet"),
        )
        base_ambient = DataCenterAmbient(seed=factory.stream("ambient"))
        self.ambient = (
            self.faults.wrap_ambient(base_ambient)
            if self.faults is not None else base_ambient
        )
        self.routes = build_route_bank(
            scenario.part.make_grid(),
            [scenario.route_length_ps] * scenario.routes,
        )
        self.loop = EventLoop(_RegionClock(self.region),
                              recorder=recorder)
        self._synced: dict[int, float] = {}
        self.failed_wipes = 0
        self.partial_wipes = 0
        self.preempted = 0
        self.retired_boards = 0
        self.rent_retries = 0
        if recorder is not None:
            recorder.add_probe(
                SERIES_AGING_DEBT, self._aging_debt_at,
                help="hours of deferred aging replay outstanding "
                     "across tracked boards",
            )
            recorder.record_origin(scenario.devices)

    # -- fault telemetry ---------------------------------------------------

    def note_fault(self, site: str, now_hours: float, **attrs) -> None:
        """One fleet fault landed: counters, instant span, series."""
        note_fleet_fault(site, hours=round(now_hours, 6), **attrs)
        if self.recorder is not None:
            self.recorder.sample_rate(
                SERIES_FAULTS, now_hours, self.faults.total_fires,
                help="cumulative fleet faults injected by the plan",
            )

    def sample_wipe_faults(self, now_hours: float) -> None:
        """Update the failed/partial-wipe series after a wipe fault."""
        if self.recorder is not None:
            self.recorder.sample_rate(
                SERIES_FAILED_WIPES, now_hours,
                self.failed_wipes + self.partial_wipes,
                help="cumulative releases whose wipe failed or was "
                     "partial",
            )

    # -- aging debt --------------------------------------------------------

    def _aging_debt_at(self, now_hours: float) -> float:
        """Deferred-replay debt at ``now_hours``: the hours of history
        the lazy-aging layer still owes the tracked boards (untracked
        boards carry no analog state, so they owe nothing)."""
        synced = self._synced
        return max(0.0, len(synced) * now_hours - sum(synced.values()))

    def aging_debt_hours(self) -> float:
        """Outstanding aging debt at the current sim clock."""
        return self._aging_debt_at(self.loop.now_hours)

    # -- board thermal clocks ---------------------------------------------

    def _tick_intervals(
        self, t0: float, t1: float
    ) -> list[tuple[float, float]]:
        """(duration, ambient) intervals over deterministic tick
        boundaries -- identical for any engine, since both see the
        same tracked event times."""
        if t1 <= t0:
            return []
        tick = self.scenario.thermal_tick_hours
        out = []
        t = t0
        boundary = math.floor(t0 / tick) * tick + tick
        while boundary < t1:
            out.append((boundary - t, self.ambient.at(t)))
            t = boundary
            boundary += tick
        out.append((t1 - t, self.ambient.at(t)))
        return out

    def sync_board(self, board: int, now_hours: float) -> FpgaDevice:
        """Materialise a board and integrate its history up to now.

        A board touched for the first time has no analog state, so its
        idle past is one O(1) fast-forward; thereafter it replays
        (design loaded or not) over thermal-tick intervals.
        """
        dev = self.fleet.device(board)
        last = self._synced.get(board)
        if last is None:
            if now_hours > 0.0:
                dev.advance_hours(now_hours, self.ambient.at(0.0))
            dev.set_ambient(self.ambient.at(now_hours))
        else:
            for duration, ambient_k in self._tick_intervals(last, now_hours):
                dev.advance_hours(duration, ambient_k)
        self._synced[board] = now_hours
        return dev

    # -- probing -----------------------------------------------------------

    def probe(self, board: int, now_hours: float) -> dict:
        """Read every route's remanent delta on a board.

        A route is *readable* when the delta clears the probe
        resolution; the inferred bit is the delta's sign (a burned-in
        ``1`` slows the route, see the integration suite).
        """
        dev = self.sync_board(board, now_hours)
        deltas = [dev.route_delta_ps(route) for route in self.routes]
        resolution = self.scenario.probe_resolution_ps
        return {
            "board": board,
            "deltas_ps": deltas,
            "bits": [1 if d > 0.0 else 0 for d in deltas],
            "readable": [abs(d) >= resolution for d in deltas],
        }

    def accuracy(self, probe: dict, secret: tuple) -> float:
        """Fraction of secret bits recovered (readable and correct)."""
        hits = sum(
            1
            for bit, ok, want in zip(
                probe["bits"], probe["readable"], secret
            )
            if ok and bit == want
        )
        return hits / len(secret)


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlashAttackPlan:
    """A re-acquisition race: grab boards the instant a victim leaves."""

    victims: int = 4
    burn_hours: float = 48.0
    reaction_hours: float = 0.5
    flash_limit: int = 8
    spacing_hours: float = 24.0
    warmup_hours: float = 12.0


@dataclass(frozen=True)
class ScanPlan:
    """Marketplace scanning: periodically sample the pool for pentimenti."""

    victims: int = 3
    burn_hours: float = 48.0
    spacing_hours: float = 36.0
    warmup_hours: float = 12.0
    scan_every_hours: float = 8.0
    scan_width: int = 6


@dataclass
class CampaignResult:
    """Fleet-level outcome of one attacker campaign.

    The fault fields are always present (all zero / ``ok`` without a
    plan) so downstream consumers see one stable schema;
    ``region_status`` is the graceful-degradation surface -- a
    campaign whose region went dark reports partial yield here instead
    of dying.
    """

    kind: str
    engine: str
    victims_attempted: int
    victims_skipped: int
    recovered: int
    recovery_yield: float
    mean_accuracy: float
    boards_probed: int
    lifecycle_events: int
    tracked_events: int
    dropped_arrivals: int
    details: list = field(default_factory=list)
    failed_wipes: int = 0
    partial_wipes: int = 0
    preempted: int = 0
    retired_boards: int = 0
    rent_retries: int = 0
    faults: dict = field(default_factory=dict)
    region_status: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "victims_attempted": self.victims_attempted,
            "victims_skipped": self.victims_skipped,
            "recovered": self.recovered,
            "recovery_yield": self.recovery_yield,
            "mean_accuracy": self.mean_accuracy,
            "boards_probed": self.boards_probed,
            "lifecycle_events": self.lifecycle_events,
            "tracked_events": self.tracked_events,
            "dropped_arrivals": self.dropped_arrivals,
            "details": self.details,
            "failed_wipes": self.failed_wipes,
            "partial_wipes": self.partial_wipes,
            "preempted": self.preempted,
            "retired_boards": self.retired_boards,
            "rent_retries": self.rent_retries,
            "faults": self.faults,
            "region_status": self.region_status,
        }


class _Victim:
    """One victim tenancy's mutable campaign state."""

    def __init__(self, index: int, secret: tuple) -> None:
        self.index = index
        self.secret = secret
        self.board: Optional[int] = None
        self.released_at: Optional[float] = None
        self.skipped = False
        self.skip_reason: Optional[str] = None
        self.recovered = False
        self.accuracy = 0.0
        self.preempted = False
        self.wipe_mode = "ok"


def _draw_secrets(sim: FleetSimulator, victims: int) -> list[tuple]:
    return [
        tuple(int(b) for b in sim.rng.integers(0, 2, size=sim.scenario.routes))
        for _ in range(victims)
    ]


def _victim_rent(sim: FleetSimulator, victim: _Victim, designs: dict,
                 deadline_hours: Optional[float] = None):
    """RENT handler: take a board and burn the secret onto it.

    Under a fault plan a refused rent -- the region is inside an
    outage window, or the pool is empty -- requeues itself with the
    active :class:`~repro.reliability.retry.RetryPolicy` backoff
    (denominated in simulated hours) until the attempt budget or the
    victim's release ``deadline_hours`` runs out; without a plan a
    miss skips the victim immediately, exactly as before.
    """

    def handler(loop: EventLoop, event) -> None:
        now = loop.now_hours
        plan = sim.faults
        attempt = int(event.data.get("attempt", 1))
        blocked = plan is not None and plan.in_outage(now)
        board = None if blocked else sim.region.rent()
        if board is None:
            if blocked:
                plan.note_fire("fleet.outage")
                sim.note_fault("fleet.outage", now, victim=victim.index,
                               attempt=attempt)
            else:
                note_event("fleet.capacity_miss", victim=victim.index)
            if plan is not None:
                policy = get_retry_policy()
                label = f"fleet.rent#victim{victim.index}"
                delay_hours = policy.delay_s(attempt, label)
                retry_at = now + delay_hours
                if attempt < policy.max_attempts and (
                    deadline_hours is None or retry_at < deadline_hours
                ):
                    sim.rent_retries += 1
                    note_retry(
                        label, attempt, delay_hours,
                        CapacityError(
                            "region dark" if blocked else "pool empty"
                        ),
                        unit="h",
                    )
                    loop.schedule(retry_at, EventKind.RENT, handler,
                                  attempt=attempt + 1)
                    return
            victim.skipped = True
            victim.skip_reason = "outage" if blocked else "capacity"
            return
        victim.board = board
        dev = sim.sync_board(board, now)
        if dev.loaded_design is not None:
            # A failed wipe left the previous tenant's design resident;
            # loading the new tenant's bitstream overwrites it (the
            # configuration write is what finally clears the fabric).
            dev.wipe()
        target = build_target_design(
            sim.scenario.part, sim.routes, list(victim.secret),
            heater_dsps=0, name=f"victim{victim.index}",
        )
        designs[victim.index] = target
        dev.load(target.bitstream)

    return handler


def _release_board(sim: FleetSimulator, victim: _Victim,
                   now_hours: float) -> None:
    """Integrate the burn, wipe (maybe imperfectly), return the board.

    The wipe outcome comes from the plan's ``fleet.wipe#victim<i>``
    stream -- keyed to the victim, not the engine's iteration order --
    so every engine/batch combination resolves the same release the
    same way: a *failed* wipe leaves the victim design resident, a
    *partial* wipe clears the fabric but re-imprints the unscrubbed
    routes as a residue design.
    """
    dev = sim.sync_board(victim.board, now_hours)
    plan = sim.faults
    mode, scrubbed = "ok", None
    if plan is not None and plan.wipe is not None:
        mode, scrubbed = plan.decide_wipe(
            f"victim{victim.index}", sim.scenario.routes
        )
    if mode == "failed":
        victim.wipe_mode = "failed"
        sim.failed_wipes += 1
        sim.note_fault("fleet.wipe_fail", now_hours, victim=victim.index)
        sim.sample_wipe_faults(now_hours)
    elif mode == "partial":
        dev.wipe()
        residue_routes = [
            route for route, clean in zip(sim.routes, scrubbed)
            if not clean
        ]
        residue_bits = [
            bit for bit, clean in zip(victim.secret, scrubbed)
            if not clean
        ]
        if residue_routes:
            residue = build_target_design(
                sim.scenario.part, residue_routes, residue_bits,
                heater_dsps=0, name=f"victim{victim.index}-residue",
            )
            dev.load(residue.bitstream)
        victim.wipe_mode = "partial"
        sim.partial_wipes += 1
        sim.note_fault("fleet.wipe_partial", now_hours,
                       victim=victim.index,
                       residue_routes=len(residue_routes))
        sim.sample_wipe_faults(now_hours)
    else:
        dev.wipe()
    sim.region.release(victim.board)
    victim.released_at = now_hours


def _victim_release(sim: FleetSimulator, victim: _Victim):
    """RELEASE handler: integrate the burn, wipe, return the board."""

    def handler(loop: EventLoop, event) -> None:
        if victim.skipped:
            return
        if victim.board is None:
            # The rent retried past the tenancy window without ever
            # landing; the victim never ran.
            victim.skipped = True
            victim.skip_reason = victim.skip_reason or "outage"
            return
        if victim.released_at is not None:
            return  # already reclaimed by a preemption storm
        _release_board(sim, victim, loop.now_hours)
        note_event("fleet.victim_released", victim=victim.index,
                   board=victim.board)

    return handler


def _schedule_fault_events(sim: FleetSimulator, victims: list,
                           on_release=None) -> None:
    """Queue the plan's storm and retirement events on the loop.

    ``on_release`` lets the scan campaign index preempted boards the
    same way its ordinary release handler does.
    """
    plan = sim.faults
    if plan is None:
        return
    horizon = sim.scenario.horizon_hours

    def storm_handler(storm_index: int):
        def handler(loop: EventLoop, event) -> None:
            now = loop.now_hours
            for victim in victims:
                if (victim.skipped or victim.board is None
                        or victim.released_at is not None):
                    continue
                if not plan.storm_preempts(
                    storm_index, f"victim{victim.index}"
                ):
                    continue
                _release_board(sim, victim, now)
                victim.preempted = True
                sim.preempted += 1
                plan.note_fire("fleet.preempt")
                sim.note_fault("fleet.preempt", now,
                               victim=victim.index, storm=storm_index)
                if on_release is not None:
                    on_release(victim)

        return handler

    def retire_handler(wave_index: int, boards: int):
        def handler(loop: EventLoop, event) -> None:
            now = loop.now_hours
            available = sim.region.available()
            positions = plan.retire_positions(
                wave_index, available, boards
            )
            if not positions:
                return
            retired = sim.region.retire_free(positions)
            for board in retired:
                # Retired silicon ages no further; forgetting it keeps
                # the aging-debt series truthful.
                sim._synced.pop(board, None)
            sim.retired_boards += len(retired)
            plan.note_fire("fleet.retire", len(retired))
            sim.note_fault("fleet.retire", now, wave=wave_index,
                           boards=len(retired))

        return handler

    for index, storm in enumerate(plan.storms):
        if storm.start_hours <= horizon:
            sim.loop.schedule(storm.start_hours, EventKind.PREEMPT,
                              storm_handler(index), storm=index)
    for index, wave in enumerate(plan.retirements):
        if wave.time_hours <= horizon:
            sim.loop.schedule(wave.time_hours, EventKind.RETIRE,
                              retire_handler(index, wave.boards),
                              wave=index)


def _region_status(sim: FleetSimulator, victims: list) -> dict:
    """Per-region health map: the graceful-degradation surface.

    ``ok`` when nothing went wrong, ``degraded`` after any outage,
    retirement or preemption, ``dark`` when an outage window is still
    open at the campaign horizon -- the region never came back, and the
    campaign reports whatever partial yield it achieved instead of
    dying.
    """
    plan = sim.faults
    horizon = sim.scenario.horizon_hours
    outage_hours = (
        plan.outage_hours_within(horizon) if plan is not None else 0.0
    )
    dark_at_horizon = plan is not None and plan.in_outage(horizon)
    degraded = (
        outage_hours > 0.0
        or sim.retired_boards > 0
        or sim.preempted > 0
    )
    status = "ok"
    if dark_at_horizon:
        status = "dark"
    elif degraded:
        status = "degraded"
    return {
        "r0": {
            "boards": sim.scenario.devices - sim.retired_boards,
            "retired": sim.retired_boards,
            "outage_hours": outage_hours,
            "status": status,
            "victims_skipped": sum(1 for v in victims if v.skipped),
        }
    }


def _finish(
    sim: FleetSimulator,
    kind: str,
    victims: list[_Victim],
    boards_probed: int,
    details: list,
) -> CampaignResult:
    attempted = [v for v in victims if not v.skipped]
    recovered = sum(1 for v in attempted if v.recovered)
    mean_acc = (
        sum(v.accuracy for v in attempted) / len(attempted)
        if attempted else 0.0
    )
    result = CampaignResult(
        kind=kind,
        engine=sim.region.engine,
        victims_attempted=len(attempted),
        victims_skipped=len(victims) - len(attempted),
        recovered=recovered,
        recovery_yield=recovered / len(attempted) if attempted else 0.0,
        mean_accuracy=mean_acc,
        boards_probed=boards_probed,
        lifecycle_events=sim.region.events_processed,
        tracked_events=sim.loop.events_processed,
        dropped_arrivals=sim.region.dropped_arrivals,
        details=details,
        failed_wipes=sim.failed_wipes,
        partial_wipes=sim.partial_wipes,
        preempted=sim.preempted,
        retired_boards=sim.retired_boards,
        rent_retries=sim.rent_retries,
        faults=sim.faults.ledger() if sim.faults is not None else {},
        region_status=_region_status(sim, victims),
    )
    note_event("fleet.campaign_done", campaign=kind,
               recovery_yield=result.recovery_yield)
    return result


def run_flash_campaign(
    scenario: FleetScenario,
    plan: Optional[FlashAttackPlan] = None,
    recorder: Optional[FlightRecorder] = None,
    fault_plan: Optional[FleetFaultPlan] = None,
) -> CampaignResult:
    """A flash re-acquisition race over a churning fleet.

    Each victim burns its secret for ``burn_hours``; the attacker
    reacts ``reaction_hours`` after the release, renting up to
    ``flash_limit`` boards, probing all of them, and keeping the one
    with the most readable routes.  A victim counts as recovered when
    the attacker's best board *is* the victim's board and the read
    accuracy clears the scenario threshold.

    ``fault_plan`` injects deterministic provider chaos (failed wipes,
    outages, storms, retirement, thermal excursions); results stay
    bit-identical across churn engines and batch sizes under any plan.
    """
    plan = plan or FlashAttackPlan()
    sim = FleetSimulator(scenario, recorder=recorder,
                         fault_plan=fault_plan)
    victims = [
        _Victim(i, secret)
        for i, secret in enumerate(_draw_secrets(sim, plan.victims))
    ]
    designs: dict = {}
    details: list = []
    probed = [0]

    def flash(victim: _Victim):
        def handler(loop: EventLoop, event) -> None:
            if victim.skipped or victim.board is None:
                return
            now = loop.now_hours
            count = min(plan.flash_limit, sim.region.available())
            boards = [sim.region.rent() for _ in range(count)]
            probes = [sim.probe(board, now) for board in boards]
            probed[0] += len(boards)
            # The attacker harvests a candidate secret from every
            # flashed board (stale pentimenti from earlier tenants are
            # among them); the race is won when the victim's own board
            # was re-acquired and its imprint decodes.
            hit = next(
                (p for p in probes if p["board"] == victim.board), None
            )
            if hit is not None:
                victim.accuracy = sim.accuracy(hit, victim.secret)
                victim.recovered = (
                    victim.accuracy >= scenario.accuracy_threshold
                )
            details.append({
                "victim": victim.index,
                "victim_board": victim.board,
                "reacquired": hit is not None,
                "accuracy": victim.accuracy,
                "recovered": victim.recovered,
                "boards_flashed": len(boards),
                "preempted": victim.preempted,
                "wipe_mode": victim.wipe_mode,
            })
            # Zero-hour rentals: probed boards go straight back.
            for board in boards:
                sim.region.release(board)
            if recorder is not None:
                recorder.sample_rate(
                    SERIES_BOARDS_PROBED, now, probed[0],
                    help="cumulative boards the attacker has probed",
                )
                recorder.sample(
                    SERIES_RECOVERY_YIELD, now,
                    sum(1 for v in victims if v.recovered) / len(victims),
                    help="fraction of victims recovered so far",
                )

        return handler

    note_phase("fleet.flash", total=plan.victims,
               devices=scenario.devices, engine=scenario.engine,
               sim_total_hours=scenario.horizon_hours)
    with trace.span("fleet.campaign", kind="flash",
                    engine=scenario.engine):
        for victim in victims:
            start = plan.warmup_hours + victim.index * (
                plan.burn_hours + plan.spacing_hours
            )
            end = start + plan.burn_hours
            sim.loop.schedule(start, EventKind.RENT,
                              _victim_rent(sim, victim, designs,
                                           deadline_hours=end))
            sim.loop.schedule(end, EventKind.RELEASE,
                              _victim_release(sim, victim))
            sim.loop.schedule(end + plan.reaction_hours, EventKind.SCAN,
                              flash(victim))
        _schedule_fault_events(sim, victims)
        sim.loop.run(until_hours=scenario.horizon_hours)
    return _finish(sim, "flash", victims, probed[0], details)


def run_scan_campaign(
    scenario: FleetScenario,
    plan: Optional[ScanPlan] = None,
    recorder: Optional[FlightRecorder] = None,
    fault_plan: Optional[FleetFaultPlan] = None,
) -> CampaignResult:
    """Marketplace scanning: periodic pool sampling for pentimenti.

    The attacker rents ``scan_width`` boards every
    ``scan_every_hours``, probes them, and releases them immediately.
    A victim is recovered when any post-release scan lands on their
    board and reads the secret above the accuracy threshold.

    ``fault_plan`` injects deterministic provider chaos exactly as in
    :func:`run_flash_campaign`.
    """
    plan = plan or ScanPlan()
    sim = FleetSimulator(scenario, recorder=recorder,
                         fault_plan=fault_plan)
    victims = [
        _Victim(i, secret)
        for i, secret in enumerate(_draw_secrets(sim, plan.victims))
    ]
    designs: dict = {}
    details: list = []
    probed = [0]
    by_board: dict[int, _Victim] = {}

    def index_released(victim: _Victim) -> None:
        if not victim.skipped and victim.board is not None:
            by_board[victim.board] = victim

    def release_and_index(victim: _Victim):
        inner = _victim_release(sim, victim)

        def handler(loop: EventLoop, event) -> None:
            inner(loop, event)
            index_released(victim)

        return handler

    def scan(loop: EventLoop, event) -> None:
        now = loop.now_hours
        count = min(plan.scan_width, sim.region.available())
        boards = [sim.region.rent() for _ in range(count)]
        for board in boards:
            probe = sim.probe(board, now)
            probed[0] += 1
            victim = by_board.get(board)
            if victim is not None and not victim.recovered:
                accuracy = sim.accuracy(probe, victim.secret)
                victim.accuracy = max(victim.accuracy, accuracy)
                if accuracy >= scenario.accuracy_threshold:
                    victim.recovered = True
                    details.append({
                        "victim": victim.index,
                        "board": board,
                        "scan_hours": now,
                        "accuracy": accuracy,
                    })
                    note_event("fleet.scan_hit", victim=victim.index,
                               board=board)
        for board in boards:
            sim.region.release(board)
        if recorder is not None:
            recorder.sample_rate(
                SERIES_BOARDS_PROBED, now, probed[0],
                help="cumulative boards the attacker has probed",
            )
            recorder.sample(
                SERIES_RECOVERY_YIELD, now,
                sum(1 for v in victims if v.recovered) / len(victims),
                help="fraction of victims recovered so far",
            )

    note_phase("fleet.scan", total=plan.victims,
               devices=scenario.devices, engine=scenario.engine,
               sim_total_hours=scenario.horizon_hours)
    with trace.span("fleet.campaign", kind="scan",
                    engine=scenario.engine):
        for victim in victims:
            start = plan.warmup_hours + victim.index * (
                plan.burn_hours + plan.spacing_hours
            )
            end = start + plan.burn_hours
            sim.loop.schedule(start, EventKind.RENT,
                              _victim_rent(sim, victim, designs,
                                           deadline_hours=end))
            sim.loop.schedule(end, EventKind.RELEASE,
                              release_and_index(victim))
        t = plan.warmup_hours
        while t < scenario.horizon_hours:
            sim.loop.schedule(t, EventKind.SCAN, scan)
            t += plan.scan_every_hours
        _schedule_fault_events(sim, victims, on_release=index_released)
        sim.loop.run(until_hours=scenario.horizon_hours)
    return _finish(sim, "scan", victims, probed[0], details)


# ---------------------------------------------------------------------------
# Multi-seed campaign sweeps with checkpoint/resume
# ---------------------------------------------------------------------------


#: Campaign dispatch for sweeps (module-level so tests can substitute a
#: crashing runner to exercise kill-and-resume).
_CAMPAIGN_RUNNERS = {
    "flash": run_flash_campaign,
    "scan": run_scan_campaign,
}


@dataclass
class FleetSweepResult:
    """Aggregate outcome of a multi-seed fleet campaign sweep."""

    campaign: str
    seeds: list
    results: list
    mean_yield: float
    resumed_seeds: int = 0

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "seeds": self.seeds,
            "mean_recovery_yield": self.mean_yield,
            "results": self.results,
        }


def fleet_journal_context(
    scenario: FleetScenario,
    campaign: str,
    attack_plan=None,
    fault_plan: Optional[FleetFaultPlan] = None,
) -> dict:
    """The sweep identity a campaign journal is verified against.

    Engine and batch size are deliberately *excluded*: campaign
    results are pinned engine/batch-invariant, so a journal written
    under the reference engine may legitimately resume under bulk (and
    must produce the same bytes).  The seed list is excluded too, so a
    partial run resumes under a superset of seeds.
    """
    plan_payload = None
    if attack_plan is not None:
        plan_payload = {
            name: getattr(attack_plan, name)
            for name in sorted(attack_plan.__dataclass_fields__)
        }
    return {
        "kind": "fleet_sweep",
        "campaign": str(campaign),
        "devices": scenario.devices,
        "horizon_hours": scenario.horizon_hours,
        "arrival_rate_per_hour": scenario.churn.arrival_rate_per_hour,
        "mean_rental_hours": scenario.churn.mean_rental_hours,
        "part": scenario.part.name,
        "wear": scenario.wear.name,
        "routes": scenario.routes,
        "route_length_ps": scenario.route_length_ps,
        "thermal_tick_hours": scenario.thermal_tick_hours,
        "probe_resolution_ps": scenario.probe_resolution_ps,
        "accuracy_threshold": scenario.accuracy_threshold,
        "attack_plan": plan_payload,
        "fault_plan": (
            fault_plan.to_dict() if fault_plan is not None else None
        ),
    }


def run_fleet_sweep(
    scenario: FleetScenario,
    seeds: Sequence[int],
    campaign: str = "flash",
    attack_plan=None,
    fault_plan: Optional[FleetFaultPlan] = None,
    journal=None,
    recorder: Optional[FlightRecorder] = None,
) -> FleetSweepResult:
    """Run one campaign per seed, optionally journaled for resume.

    With a :class:`~repro.reliability.checkpoint.SweepJournal`, every
    completed seed is flushed atomically -- the full campaign result,
    the seed's metrics delta, and (when recording) the seed's
    FlightRecorder dump all land in the journal entry.  A killed run
    relaunched with the same journal replays completed seeds from disk
    and recomputes only the remainder; because per-seed recorder dumps
    carry their original ``dump_id``s, merging is idempotent and the
    resumed run's result, counters and series match an uninterrupted
    run bit-for-bit.

    Per-seed fault plans derive from ``fault_plan.seed`` and the
    campaign seed (:func:`~repro.reliability.fleet_chaos
    .derive_fleet_plan_seed`), so fault streams decorrelate across
    seeds yet the whole sweep stays reproducible from the pair.
    """
    try:
        runner = _CAMPAIGN_RUNNERS[campaign]
    except KeyError:
        raise ConfigurationError(
            f"unknown fleet campaign {campaign!r} (expected one of: "
            f"{', '.join(sorted(_CAMPAIGN_RUNNERS))})"
        ) from None
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        raise ConfigurationError("a fleet sweep needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(
            f"sweep seeds must be unique, got {seeds}"
        )
    results: dict[int, dict] = {}
    yields: dict[int, float] = {}
    resumed = 0
    note_phase("fleet.sweep", total=len(seeds), campaign=campaign,
               devices=scenario.devices, engine=scenario.engine)
    with trace.span("fleet.sweep", campaign=campaign,
                    seeds=len(seeds)):
        for seed in seeds:
            if journal is not None and seed in journal:
                entry = journal.get(seed)
                state = entry.get("metrics_state")
                if state:
                    registry.merge_state(state)
                extra = entry.get("extra") or {}
                if recorder is not None and extra.get("series_state"):
                    recorder.merge_state(extra["series_state"])
                results[seed] = extra.get("result") or {}
                yields[seed] = float(entry["value"])
                resumed += 1
                registry.counter(
                    "fleet_sweep_seeds_resumed_total",
                    "fleet sweep seeds replayed from a journal",
                ).inc()
                note_seed_done(seed, yields[seed], resumed=True)
                continue
            seed_scenario = replace(scenario, seed=seed)
            seed_plan = None
            if fault_plan is not None:
                seed_plan = fault_plan.reseeded(
                    derive_fleet_plan_seed(fault_plan.seed, seed)
                )
            seed_recorder = None
            if recorder is not None:
                seed_recorder = FlightRecorder(
                    cadence_hours=recorder.cadence_hours,
                    max_points=recorder.max_points,
                )
            if journal is None:
                result = runner(seed_scenario, attack_plan,
                                recorder=seed_recorder,
                                fault_plan=seed_plan)
                if seed_recorder is not None:
                    recorder.merge_state(seed_recorder.dump_state())
                results[seed] = result.to_dict()
                yields[seed] = result.recovery_yield
                note_seed_done(seed, result.recovery_yield)
                continue
            # Journaled: isolate this seed's counter deltas so the
            # journal entry carries exactly this seed's work -- the
            # same discipline as the Monte Carlo sweep, which is what
            # makes resumed telemetry match an uninterrupted run.
            parent_state = registry.dump_state()
            registry.reset()
            try:
                result = runner(seed_scenario, attack_plan,
                                recorder=seed_recorder,
                                fault_plan=seed_plan)
            finally:
                seed_state = registry.dump_state()
                registry.reset()
                registry.merge_state(parent_state)
                registry.merge_state(seed_state)
            extra: dict = {"result": result.to_dict()}
            if seed_recorder is not None:
                series_state = seed_recorder.dump_state()
                extra["series_state"] = series_state
                recorder.merge_state(series_state)
            journal.record(seed, result.recovery_yield,
                           metrics_state=seed_state, extra=extra)
            results[seed] = extra["result"]
            yields[seed] = result.recovery_yield
            note_seed_done(seed, result.recovery_yield)
    mean_yield = sum(yields[seed] for seed in seeds) / len(seeds)
    return FleetSweepResult(
        campaign=campaign,
        seeds=seeds,
        results=[results[seed] for seed in seeds],
        mean_yield=mean_yield,
        resumed_seeds=resumed,
    )


# ---------------------------------------------------------------------------
# Throughput benchmark entry point
# ---------------------------------------------------------------------------


def run_churn_benchmark(
    devices: int = 100_000,
    arrivals: int = 500_000,
    seed: int = 0,
    engine: str = "bulk",
    batch_hours: float = math.inf,
    arrival_rate_per_hour: float = 60.0,
    mean_rental_hours: Optional[float] = None,
    recorder: Optional[FlightRecorder] = None,
) -> dict:
    """Time a pure-churn fleet scenario; the BENCH_fleet workload.

    Mean concurrency is sized to half the fleet so the run is
    drop-free, making the lifecycle event count exactly
    ``2 * arrivals``.
    """
    if mean_rental_hours is None:
        mean_rental_hours = devices / (2.0 * arrival_rate_per_hour)
    model = ChurnModel(
        arrival_rate_per_hour=arrival_rate_per_hour,
        mean_rental_hours=mean_rental_hours,
    )
    trace_ = model.draw_count(arrivals, seed)
    region = VirtualRegion(
        devices, trace_, engine=engine, batch_hours=batch_hours,
        recorder=recorder,
    )
    if recorder is not None:
        recorder.record_origin(devices)
    horizon = float(trace_.arrivals[-1] + trace_.durations.max() + 1.0)
    start = perf_counter()
    region.advance_to(horizon)
    elapsed = perf_counter() - start
    events = region.events_processed
    return {
        "devices": devices,
        "arrivals": arrivals,
        "engine": engine,
        "events": events,
        "dropped_arrivals": region.dropped_arrivals,
        "seconds": elapsed,
        "events_per_second": events / elapsed if elapsed > 0 else 0.0,
        "final_free": region.available(),
    }
