"""The marketplace: sealed AFIs for rent.

Publishers list sealed bitstreams (AFIs); customers can deploy a listed
AFI onto their rented instance without ever seeing its contents.  The
platform's promise -- "no FPGA internal design code is exposed" -- holds
at the logical level; Threat Model 1 shows it does not hold against the
analog side channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessError, CloudError
from repro.cloud.instance import F1Instance
from repro.fabric.bitstream import Bitstream, DesignSkeleton, SealedBitstream


@dataclass(frozen=True)
class MarketplaceListing:
    """One published AFI."""

    afi_id: str
    image: SealedBitstream
    publisher: str
    description: str = ""


@dataclass
class Marketplace:
    """The AFI catalogue."""

    _listings: dict[str, MarketplaceListing] = field(default_factory=dict)
    _counter: int = 0

    def publish(
        self,
        image: Bitstream,
        publisher: str,
        description: str = "",
        public_skeleton: bool = False,
    ) -> MarketplaceListing:
        """Seal and list a design.

        ``public_skeleton=True`` models OpenTitan/FINN-style distribution
        where the sources (and hence the placement skeleton) are public
        even though the loaded data is not.
        """
        self._counter += 1
        afi_id = f"agfi-{self._counter:08d}"
        sealed = SealedBitstream(
            image, publisher=publisher, public_skeleton=public_skeleton
        )
        listing = MarketplaceListing(
            afi_id=afi_id,
            image=sealed,
            publisher=publisher,
            description=description,
        )
        self._listings[afi_id] = listing
        return listing

    def listing(self, afi_id: str) -> MarketplaceListing:
        """Look up a listing by AFI id."""
        if afi_id not in self._listings:
            raise CloudError(f"no AFI listed with id {afi_id!r}")
        return self._listings[afi_id]

    def catalogue(self) -> list[MarketplaceListing]:
        """All listings, ordered by AFI id."""
        return sorted(self._listings.values(), key=lambda l: l.afi_id)

    def deploy(self, afi_id: str, instance: F1Instance) -> None:
        """Load a listed AFI onto a customer's instance."""
        listing = self.listing(afi_id)
        instance.load_image(listing.image)

    def skeleton_of(self, afi_id: str) -> DesignSkeleton:
        """The design skeleton, if the publisher made it public.

        Raises :class:`AccessError` otherwise -- the attacker then needs
        another Assumption-1 channel (authorship or a leak).
        """
        listing = self.listing(afi_id)
        if not listing.image.public_skeleton:
            raise AccessError(
                f"AFI {afi_id} has no public skeleton; Assumption 1 "
                f"requires another source for the design structure"
            )
        return listing.image.skeleton()
