"""Re-acquiring the victim's physical device.

Threat Model 2's Assumption 2: the attacker can obtain the same FPGA the
victim relinquished.  The paper's practical route is the **flash
attack** -- "lock up the available stock right before the victim
releases their instance.  If the attacker procures all the available
resources, they are guaranteed to obtain the relinquished victim board"
-- noting that regional F1 stock is small enough that this takes only a
few devices.

:class:`FlashAttack` implements it: exhaust the region, optionally
identify the victim's board by fingerprint (or by probing each board for
the pentimento itself), and release the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import AttackError, CapacityError
from repro.cloud.fingerprint import RouteFingerprint, match_score
from repro.cloud.instance import F1Instance
from repro.cloud.provider import CloudProvider
from repro.reliability.retry import get_retry_policy, note_retry


@dataclass
class FlashAttack:
    """Exhaust a region's free capacity to guarantee board possession."""

    provider: CloudProvider
    region_name: str
    tenant: str = "attacker"
    holdings: list = field(default_factory=list)

    def acquire_all(self, limit: int = 64) -> list[F1Instance]:
        """Rent instances until the region reports capacity exhaustion.

        ``limit`` guards against unexpectedly deep pools (the paper's
        observation: request-limit errors arrive "through acquiring only
        a few devices").

        A capacity error normally *is* the stop signal -- the region is
        exhausted, exactly what the flash attack wants.  But a chaos
        plan can inject the same error while devices remain free; when
        the pool still reports availability the miss is treated as
        transient and retried (bounded by the retry policy), so the
        attack still ends holding the whole region.
        """
        policy = get_retry_policy()
        transient_misses = 0
        while len(self.holdings) < limit:
            try:
                instance = self.provider.rent(self.region_name, self.tenant)
            except CapacityError as exc:
                region = self.provider.region(self.region_name)
                still_free = region.available_count(
                    self.provider.clock_hours
                )
                if still_free > 0 and transient_misses < policy.max_attempts - 1:
                    transient_misses += 1
                    note_retry(
                        "cloud.flash_acquire", transient_misses,
                        policy.delay_s(transient_misses,
                                       "cloud.flash_acquire"),
                        exc,
                    )
                    continue
                break
            transient_misses = 0
            self.holdings.append(instance)
        if not self.holdings:
            raise AttackError(
                f"flash attack acquired nothing in {self.region_name!r}"
            )
        return list(self.holdings)

    def identify_by_fingerprint(
        self,
        reference: RouteFingerprint,
        probe: Callable[[F1Instance], RouteFingerprint],
    ) -> F1Instance:
        """Find the held instance whose fingerprint matches a reference.

        ``probe`` runs the attacker's measurement flow on one instance
        and returns its fingerprint.  The best-scoring board is kept;
        the rest can be released with :meth:`release_except`.
        """
        if not self.holdings:
            raise AttackError("no holdings; run acquire_all() first")
        scored = [
            (match_score(reference, probe(instance)), instance)
            for instance in self.holdings
        ]
        scored.sort(key=lambda pair: -pair[0])
        return scored[0][1]

    def release_except(self, keep: Optional[F1Instance] = None) -> None:
        """Return all held instances (except ``keep``) to the pool."""
        for instance in self.holdings:
            if keep is not None and instance.instance_id == keep.instance_id:
                continue
            self.provider.release(instance)
        self.holdings = [i for i in self.holdings if keep is not None
                         and i.instance_id == keep.instance_id]
