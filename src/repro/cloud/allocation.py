"""Device allocation policies.

How a region hands returned devices back out is security-relevant: rapid
LIFO reallocation is what makes Threat Model 2 practical, and the
Section 8.2 mitigation is precisely a *launch rate control* -- holding
returned devices out of the pool so BTI recovery erases the pentimento
before the next tenant arrives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.reliability.faults import maybe_inject


class AllocationOrder(enum.Enum):
    """Order in which free devices are handed to new tenants."""

    #: Most recently released first (typical warm-pool behaviour; the
    #: adversary's best case).
    LIFO = "lifo"
    #: Least recently released first.
    FIFO = "fifo"
    #: Uniformly random among free devices.
    RANDOM = "random"


@dataclass(frozen=True)
class AllocationPolicy:
    """A region's allocation behaviour.

    Attributes:
        order: hand-out order among eligible free devices.
        holdback_hours: minimum time a returned device rests before it
            becomes allocatable again (0 disables the mitigation).
    """

    order: AllocationOrder = AllocationOrder.LIFO
    holdback_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.holdback_hours < 0.0:
            raise ConfigurationError(
                f"holdback_hours must be >= 0, got {self.holdback_hours}"
            )

    def admission_check(self, region_name: str) -> None:
        """Admission control at the head of every allocation request.

        Chaos fault site ``cloud.allocate``: an active fault plan can
        make this raise :class:`~repro.errors.CapacityError` exactly as
        a genuinely empty pool would, before the region touches its
        free list or consumes any allocation randomness -- so a
        retried request replays the clean run's draw sequence.
        """
        maybe_inject(
            "cloud.allocate", CapacityError,
            f"region {region_name!r}: request limit exceeded (injected "
            f"capacity miss)",
        )
