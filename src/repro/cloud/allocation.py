"""Device allocation policies.

How a region hands returned devices back out is security-relevant: rapid
LIFO reallocation is what makes Threat Model 2 practical, and the
Section 8.2 mitigation is precisely a *launch rate control* -- holding
returned devices out of the pool so BTI recovery erases the pentimento
before the next tenant arrives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.reliability.faults import maybe_inject


class AllocationOrder(enum.Enum):
    """Order in which free devices are handed to new tenants."""

    #: Most recently released first (typical warm-pool behaviour; the
    #: adversary's best case).
    LIFO = "lifo"
    #: Least recently released first.
    FIFO = "fifo"
    #: Uniformly random among free devices.
    RANDOM = "random"


@dataclass(frozen=True)
class AllocationPolicy:
    """A region's allocation behaviour.

    Attributes:
        order: hand-out order among eligible free devices.
        holdback_hours: minimum time a returned device rests before it
            becomes allocatable again (0 disables the mitigation).
        outage_windows: ``(start_hours, end_hours)`` intervals during
            which the region admits nothing -- the eager-path twin of
            the fleet plan's
            :class:`~repro.reliability.fleet_chaos.OutageWindow`.
    """

    order: AllocationOrder = AllocationOrder.LIFO
    holdback_hours: float = 0.0
    outage_windows: tuple = ()

    def __post_init__(self) -> None:
        if self.holdback_hours < 0.0:
            raise ConfigurationError(
                f"holdback_hours must be >= 0, got {self.holdback_hours}"
            )
        for window in self.outage_windows:
            try:
                start, end = (float(window[0]), float(window[1]))
            except (TypeError, ValueError, IndexError) as exc:
                raise ConfigurationError(
                    f"outage_windows entries must be (start_hours, "
                    f"end_hours) pairs, got {window!r}"
                ) from exc
            if not 0.0 <= start < end:
                raise ConfigurationError(
                    f"outage window must satisfy 0 <= start < end, got "
                    f"{window!r}"
                )

    def in_outage(self, now_hours: float) -> bool:
        """Whether an outage window covers ``now_hours``."""
        for start, end in self.outage_windows:
            if float(start) <= now_hours < float(end):
                return True
        return False

    def admission_check(self, region_name: str,
                        now_hours: float = 0.0) -> None:
        """Admission control at the head of every allocation request.

        Two refusal paths, both raising
        :class:`~repro.errors.CapacityError` exactly as a genuinely
        empty pool would:

        * an active chaos plan firing fault site ``cloud.allocate``;
        * ``now_hours`` landing inside a configured outage window.

        Either happens before the region touches its free list or
        consumes any allocation randomness -- so a retried request
        replays the clean run's draw sequence.
        """
        if self.in_outage(now_hours):
            raise CapacityError(
                f"region {region_name!r}: dark at {now_hours}h "
                f"(outage window)"
            )
        maybe_inject(
            "cloud.allocate", CapacityError,
            f"region {region_name!r}: request limit exceeded (injected "
            f"capacity miss)",
        )
