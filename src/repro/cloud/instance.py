"""Tenant-facing FPGA instances.

An :class:`F1Instance` is what a renter holds: a handle to a physical
device mediated by the platform.  Tenants can load DRC-clean images, run
them, and attach sensor sessions to their *own* loaded Measure designs.
They cannot see the device's identity, age or analog state -- everything
an attacker learns must come through on-fabric sensors, exactly as on
the real platform.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from repro.errors import DesignRuleViolation, EvictionError, TenancyError
from repro.fabric.bitstream import Bitstream, SealedBitstream, loadable
from repro.fabric.device import FpgaDevice
from repro.fabric.drc import check_design
from repro.cloud.fleet import preemption_check
from repro.designs.measure import MeasureDesign, MeasureSession
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.faults import maybe_inject
from repro.rng import SeedLike
from repro.sensor.noise import CLOUD_NOISE, NoiseModel

_instance_ids = itertools.count(1)

_log = get_logger("cloud.instance")


class F1Instance:
    """One tenancy: a rented device plus the platform's mediation."""

    def __init__(self, device: FpgaDevice, region: "Region", tenant: str) -> None:
        self._device = device
        self._region = region
        self.tenant = tenant
        self.instance_id = next(_instance_ids)
        self.active = True

    # -- platform-internal ------------------------------------------------

    @property
    def device(self) -> FpgaDevice:
        """Platform-internal device access (provider and sensors only)."""
        return self._device

    def _require_active(self) -> None:
        if not self.active:
            raise TenancyError(
                f"instance {self.instance_id} was already released"
            )

    # -- tenant API --------------------------------------------------------

    @property
    def region_name(self) -> str:
        """Name of the region this instance lives in."""
        return self._region.name

    @property
    def part_name(self) -> str:
        """FPGA part of the underlying device."""
        return self._device.part.name

    def load_image(self, image: Union[Bitstream, SealedBitstream]) -> None:
        """Program an image after the platform's design rule checks.

        Sealed marketplace AFIs are unsealed by the platform for loading;
        the tenant still never sees their contents.  Raises
        :class:`DesignRuleViolation` for self-oscillators, power-cap
        violations, or shell intrusions.
        """
        self._require_active()
        # Chaos fault site: an eviction notice lands before any device
        # state changes, so a retried load starts from a clean slate.
        maybe_inject(
            "cloud.evict", EvictionError,
            f"instance {self.instance_id} (tenant {self.tenant!r}): "
            f"tenant evicted while programming image (injected)",
        )
        bitstream = loadable(image)
        if bitstream is None:
            registry.counter(
                "drc_rejections_total", "images rejected by provider DRC"
            ).inc()
            raise DesignRuleViolation(f"{image!r} is not a loadable image")
        report = check_design(
            bitstream, self._device.grid, self._device.part.power_cap_watts
        )
        if not report.passed:
            registry.counter(
                "drc_rejections_total", "images rejected by provider DRC"
            ).inc()
            _log.warning("drc_rejected", design=bitstream.name,
                         instance=self.instance_id)
        report.raise_on_failure()
        if self._device.loaded_design is not None:
            self._device.wipe()
        self._device.load(bitstream)
        registry.counter(
            "images_loaded_total", "bitstreams programmed onto instances"
        ).inc()

    def clear(self) -> None:
        """Unload the current design (tenant-initiated)."""
        self._require_active()
        self._device.wipe()

    def run_hours(self, hours: float) -> None:
        """Let the loaded design execute for ``hours`` of wall time.

        Advances the shared regional clock; all other devices in the
        region age/anneal over the same interval.
        """
        self._require_active()
        preemption_check(self.instance_id, self.tenant)
        registry.counter(
            "instance_hours_total", "tenant-billed instance hours simulated"
        ).inc(hours)
        self._region.provider.advance(hours)

    def attach_sensors(
        self,
        measure_design: MeasureDesign,
        noise: Optional[NoiseModel] = None,
        seed: SeedLike = None,
    ) -> MeasureSession:
        """Attach a sensing session to a loaded Measure design."""
        self._require_active()
        return measure_design.attach(
            self._device,
            noise=noise if noise is not None else CLOUD_NOISE,
            seed=seed,
        )

    def __repr__(self) -> str:
        return (
            f"F1Instance(id={self.instance_id}, tenant={self.tenant!r}, "
            f"region={self._region.name!r}, active={self.active})"
        )
