"""The cloud provider: regions, the shared clock, and tenancy lifecycle.

The provider owns simulated time.  :meth:`CloudProvider.advance` moves
the global clock; renting hands out a free device per the region's
allocation policy; releasing **wipes the device's logical state** and
returns it to the pool -- with an optional hold-back delay, the Section
8.2 launch-rate-control mitigation.

Lazy aging (the fleet-scale path)
---------------------------------

By default the provider no longer walks every device on every clock
tick.  Each region keeps an append-only :class:`RegionTimeline` of the
intervals the clock advanced through (duration + the ambient sampled at
the interval start), and every device carries only its *position* in
that timeline.  A device catches up -- replaying exactly the
``advance_hours`` calls the eager walker would have made, in the same
order, with the same ambient values -- the first time something observes
or mutates it (loading a design, wiping at release, reading a delay).
Devices with no analog state yet skip the replay entirely in O(1).

``CloudProvider(lazy_aging=False)`` restores the synchronous walker;
the equivalence suite pins the two modes bit-identical.

Allocation is O(log n): the free pool is kept ordered by
``released_at_hours`` (releases arrive in clock order, so appends keep
it sorted), hold-back eligibility is a bisect, and LIFO/FIFO hand-out
pops an end of the live window.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Optional

import numpy as np

from repro.errors import CapacityError, CloudError, TenancyError
from repro.cloud.allocation import AllocationOrder, AllocationPolicy
from repro.cloud.instance import F1Instance
from repro.fabric.device import FpgaDevice
from repro.fabric.thermal import DataCenterAmbient
from repro.physics.pool_array import FleetAgingArray
from repro.rng import SeedLike, make_rng


class RegionTimeline:
    """Append-only record of one region's clock intervals.

    ``clock_after[i]`` is the provider clock after interval ``i``,
    accumulated with the same floating-point ``+=`` sequence the eager
    walker applies to ``device.sim_hours`` -- which is what lets a
    device with no analog state fast-forward to ``clock_after[-1]``
    bit-identically without replaying the intervals one by one.
    """

    __slots__ = ("start_clock", "durations", "ambients", "clock_after")

    def __init__(self, start_clock: float) -> None:
        self.start_clock = start_clock
        self.durations: list[float] = []
        self.ambients: list[float] = []
        self.clock_after: list[float] = []

    def append(self, duration_hours: float, ambient_k: float) -> None:
        """Record one interval (ambient sampled at its start)."""
        before = (
            self.clock_after[-1] if self.clock_after else self.start_clock
        )
        self.durations.append(duration_hours)
        self.ambients.append(ambient_k)
        self.clock_after.append(before + duration_hours)

    def __len__(self) -> int:
        return len(self.durations)

    def clock_before(self, position: int) -> float:
        """The clock value at a timeline position (before interval i)."""
        if position == 0:
            return self.start_clock
        return self.clock_after[position - 1]


class _PooledDevice:
    """A free device plus when it was returned (for hold-back)."""

    __slots__ = ("device", "released_at_hours")

    def __init__(self, device: FpgaDevice, released_at_hours: float) -> None:
        self.device = device
        self.released_at_hours = released_at_hours


class Region:
    """One region: a device fleet, an ambient profile, a policy.

    The free pool is stored sorted by ``released_at_hours`` ascending
    (releases carry the monotone provider clock, so appends preserve the
    order), with a parallel key list for bisection and a head offset so
    FIFO hand-out is an O(1) pop of the front.  Ties keep insertion
    order, so LIFO's "first of the most recent" and RANDOM's indexed
    draw pick exactly the device the old linear scan picked.
    """

    def __init__(
        self,
        name: str,
        provider: "CloudProvider",
        ambient: DataCenterAmbient,
        policy: AllocationPolicy,
    ) -> None:
        self.name = name
        self.provider = provider
        self.ambient = ambient
        self.policy = policy
        self.timeline = RegionTimeline(start_clock=provider.clock_hours)
        self._free: list[Optional[_PooledDevice]] = []
        self._keys: list[float] = []  # released_at, parallel to _free
        self._head: int = 0  # start of the live window (lazy front pops)
        self._rented: dict[int, F1Instance] = {}

    # -- free pool ---------------------------------------------------------

    def add_device(self, device: FpgaDevice) -> None:
        """Place a device into the free pool (never-released boards
        sort before every returned board)."""
        key = float("-inf")
        j = bisect_right(self._keys, key, lo=self._head)
        self._free.insert(j, _PooledDevice(device, released_at_hours=key))
        self._keys.insert(j, key)
        if self.provider.lazy_aging:
            device.bind_timeline(self.timeline, len(self.timeline))

    def _return_device(self, device: FpgaDevice, released_at: float) -> None:
        """Append a returned board (clock order keeps the pool sorted)."""
        self._free.append(_PooledDevice(device, released_at))
        self._keys.append(released_at)

    def _eligible_window(self, now_hours: float) -> int:
        """End index (exclusive) of the eligible slice of the pool."""
        cutoff = now_hours - self.policy.holdback_hours
        return bisect_right(self._keys, cutoff, lo=self._head)

    def available_count(self, now_hours: float) -> int:
        """Devices eligible for allocation right now (one bisect)."""
        return self._eligible_window(now_hours) - self._head

    def _pop(self, index: int) -> _PooledDevice:
        pooled = self._free[index]
        assert pooled is not None
        if index == len(self._free) - 1:
            self._free.pop()
            self._keys.pop()
        elif index == self._head:
            self._free[index] = None
            self._head += 1
            if self._head > 32 and self._head * 2 >= len(self._free):
                del self._free[: self._head]
                del self._keys[: self._head]
                self._head = 0
        else:
            del self._free[index]
            del self._keys[index]
        return pooled

    def allocate(
        self, now_hours: float, rng: np.random.Generator
    ) -> FpgaDevice:
        """Hand out a free, non-quarantined device per the policy."""
        self.policy.admission_check(self.name, now_hours)
        hi = self._eligible_window(now_hours)
        if hi <= self._head:
            raise CapacityError(
                f"region {self.name!r}: request limit exceeded, no F1 "
                f"instances available"
            )
        if self.policy.order is AllocationOrder.LIFO:
            # First of the most-recently-released group (ties keep
            # insertion order, matching the old ``max`` scan).
            j = bisect_left(self._keys, self._keys[hi - 1],
                            lo=self._head, hi=hi)
        elif self.policy.order is AllocationOrder.FIFO:
            j = self._head
        else:
            j = self._head + int(rng.integers(0, hi - self._head))
        return self._pop(j).device

    def retire_device(self, device: FpgaDevice) -> None:
        """Permanently remove a *free* device from the region.

        Hard failure / fleet retirement: the board leaves the pool for
        good (it is not quarantined -- nothing ever brings it back).
        Rented devices cannot be retired; release them first.  The
        sorted-pool invariants (``_keys`` parallel to ``_free``, live
        window starting at ``_head``) are preserved so subsequent
        LIFO/FIFO/RANDOM hand-outs see exactly the pool a fresh region
        with the surviving boards would hold.
        """
        for index in range(self._head, len(self._free)):
            pooled = self._free[index]
            if pooled is not None and pooled.device is device:
                self._pop(index)
                return
        raise TenancyError(
            f"region {self.name!r}: cannot retire device "
            f"{device.device_id!r}: not in the free pool"
        )

    def devices(self) -> list[FpgaDevice]:
        """All devices in the region, free or rented."""
        free = [p.device for p in self._free[self._head:] if p is not None]
        return free + [inst.device for inst in self._rented.values()]

    # -- lazy aging --------------------------------------------------------

    def sync_devices(self, devices: Optional[Iterable[FpgaDevice]] = None) -> None:
        """Catch every (or the given) device up to the region clock.

        Idle devices that share one backing :class:`SegmentBtiArray` and
        sit at the same timeline position are advanced together: one
        masked array update per pending interval covers the whole group
        (see :class:`~repro.physics.pool_array.FleetAgingArray`).
        """
        targets = list(devices) if devices is not None else self.devices()
        groups: dict[tuple[int, int], list[FpgaDevice]] = {}
        for device in targets:
            if device.pending_intervals == 0:
                continue
            if (
                device.aging_kernel == "array"
                and device.loaded_design is None
                and device.materialised_segments > 0
            ):
                key = (id(device.aging_store), device.timeline_position)
                groups.setdefault(key, []).append(device)
            else:
                device.sync()
        for group in groups.values():
            if len(group) == 1:
                group[0].sync()
                continue
            position = group[0].timeline_position
            fleet = FleetAgingArray(group[0].aging_store)
            fleet.catch_up_idle(
                [d._lazy_idle_indices() for d in group],
                list(zip(self.timeline.durations[position:],
                         self.timeline.ambients[position:])),
            )
            for device in group:
                device._finish_lazy_idle()


class CloudProvider:
    """The platform operator."""

    def __init__(self, seed: SeedLike = None, lazy_aging: bool = True) -> None:
        self.clock_hours = 0.0
        self.lazy_aging = lazy_aging
        self._rng: np.random.Generator = make_rng(seed)
        self._regions: dict[str, Region] = {}

    # -- topology ----------------------------------------------------------

    def create_region(
        self,
        name: str,
        devices: list[FpgaDevice],
        policy: Optional[AllocationPolicy] = None,
        ambient: Optional[DataCenterAmbient] = None,
    ) -> Region:
        """Stand up a region over a fleet of devices."""
        if name in self._regions:
            raise CloudError(f"region {name!r} already exists")
        region = Region(
            name=name,
            provider=self,
            ambient=ambient
            or DataCenterAmbient(seed=self._rng.integers(0, 2**63)),
            policy=policy or AllocationPolicy(),
        )
        for device in devices:
            # Racked devices see the data-centre ambient immediately.
            device.set_ambient(region.ambient.at(self.clock_hours))
            region.add_device(device)
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        if name not in self._regions:
            raise CloudError(f"no region named {name!r}")
        return self._regions[name]

    def regions(self) -> list[Region]:
        """All regions, in creation order."""
        return list(self._regions.values())

    # -- tenancy -----------------------------------------------------------

    def rent(self, region_name: str, tenant: str) -> F1Instance:
        """Allocate an instance to a tenant, per the region's policy."""
        region = self.region(region_name)
        device = region.allocate(self.clock_hours, self._rng)
        instance = F1Instance(device=device, region=region, tenant=tenant)
        region._rented[instance.instance_id] = instance
        return instance

    def release(self, instance: F1Instance) -> None:
        """End a tenancy: scrub the device and return it to the pool.

        The scrub clears every bit of logical state.  It cannot touch
        the analog domain -- that is the vulnerability.  (Under lazy
        aging the wipe first catches the device up to *now*, so the
        tenancy's stress is integrated before the design disappears.)
        """
        region = self.region(instance.region_name)
        if instance.instance_id not in region._rented:
            raise TenancyError(
                f"instance {instance.instance_id} is not rented in "
                f"{region.name!r}"
            )
        instance.device.wipe()
        del region._rented[instance.instance_id]
        region._return_device(instance.device, self.clock_hours)
        instance.active = False

    # -- time --------------------------------------------------------------

    def advance(self, hours: float) -> None:
        """Advance the global clock.

        Every device in every region experiences the interval: rented
        devices run their loaded designs (powered, stressing), free
        devices idle (annealing).  Under lazy aging the interval is
        only *recorded* here; devices integrate it on first touch.
        """
        if hours < 0.0:
            raise CloudError(f"cannot advance time by {hours} hours")
        if hours == 0.0:
            return
        if self.lazy_aging:
            for region in self._regions.values():
                ambient_k = region.ambient.at(self.clock_hours)
                region.timeline.append(hours, ambient_k)
        else:
            for region in self._regions.values():
                ambient_k = region.ambient.at(self.clock_hours)
                for device in region.devices():
                    device.advance_hours(hours, ambient_k)
        self.clock_hours += hours

    def sync_all(self) -> None:
        """Catch every device in every region up to the current clock."""
        for region in self._regions.values():
            region.sync_devices()
