"""The cloud provider: regions, the shared clock, and tenancy lifecycle.

The provider owns simulated time.  :meth:`CloudProvider.advance` moves
the global clock: rented devices execute their loaded designs, free
devices sit unpowered (their imprints anneal), ambient conditions evolve
per region.  Renting hands out a free device per the region's allocation
policy; releasing **wipes the device's logical state** and returns it to
the pool -- with an optional hold-back delay, the Section 8.2
launch-rate-control mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CapacityError, CloudError, TenancyError
from repro.cloud.allocation import AllocationOrder, AllocationPolicy
from repro.cloud.instance import F1Instance
from repro.fabric.device import FpgaDevice
from repro.fabric.thermal import DataCenterAmbient
from repro.rng import SeedLike, make_rng


@dataclass
class _PooledDevice:
    """A free device plus when it was returned (for hold-back)."""

    device: FpgaDevice
    released_at_hours: float


@dataclass
class Region:
    """One region: a device fleet, an ambient profile, a policy."""

    name: str
    provider: "CloudProvider"
    ambient: DataCenterAmbient
    policy: AllocationPolicy
    _free: list = field(default_factory=list)
    _rented: dict = field(default_factory=dict)

    def add_device(self, device: FpgaDevice) -> None:
        """Place a device into the free pool."""
        self._free.append(
            _PooledDevice(device=device, released_at_hours=float("-inf"))
        )

    def available_count(self, now_hours: float) -> int:
        """Devices eligible for allocation right now."""
        cutoff = now_hours - self.policy.holdback_hours
        return sum(1 for p in self._free if p.released_at_hours <= cutoff)

    def _eligible(self, now_hours: float) -> list:
        cutoff = now_hours - self.policy.holdback_hours
        return [p for p in self._free if p.released_at_hours <= cutoff]

    def allocate(self, now_hours: float, rng) -> FpgaDevice:
        """Hand out a free, non-quarantined device per the policy."""
        self.policy.admission_check(self.name)
        eligible = self._eligible(now_hours)
        if not eligible:
            raise CapacityError(
                f"region {self.name!r}: request limit exceeded, no F1 "
                f"instances available"
            )
        if self.policy.order is AllocationOrder.LIFO:
            chosen = max(eligible, key=lambda p: p.released_at_hours)
        elif self.policy.order is AllocationOrder.FIFO:
            chosen = min(eligible, key=lambda p: p.released_at_hours)
        else:
            chosen = eligible[int(rng.integers(0, len(eligible)))]
        self._free.remove(chosen)
        return chosen.device

    def devices(self) -> list[FpgaDevice]:
        """All devices in the region, free or rented."""
        return [p.device for p in self._free] + [
            inst.device for inst in self._rented.values()
        ]


class CloudProvider:
    """The platform operator."""

    def __init__(self, seed: SeedLike = None) -> None:
        self.clock_hours = 0.0
        self._rng = make_rng(seed)
        self._regions: dict[str, Region] = {}

    # -- topology ----------------------------------------------------------

    def create_region(
        self,
        name: str,
        devices: list[FpgaDevice],
        policy: Optional[AllocationPolicy] = None,
        ambient: Optional[DataCenterAmbient] = None,
    ) -> Region:
        """Stand up a region over a fleet of devices."""
        if name in self._regions:
            raise CloudError(f"region {name!r} already exists")
        region = Region(
            name=name,
            provider=self,
            ambient=ambient
            or DataCenterAmbient(seed=self._rng.integers(0, 2**63)),
            policy=policy or AllocationPolicy(),
        )
        for device in devices:
            # Racked devices see the data-centre ambient immediately.
            device.set_ambient(region.ambient.at(self.clock_hours))
            region.add_device(device)
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        if name not in self._regions:
            raise CloudError(f"no region named {name!r}")
        return self._regions[name]

    # -- tenancy -----------------------------------------------------------

    def rent(self, region_name: str, tenant: str) -> F1Instance:
        """Allocate an instance to a tenant, per the region's policy."""
        region = self.region(region_name)
        device = region.allocate(self.clock_hours, self._rng)
        instance = F1Instance(device=device, region=region, tenant=tenant)
        region._rented[instance.instance_id] = instance
        return instance

    def release(self, instance: F1Instance) -> None:
        """End a tenancy: scrub the device and return it to the pool.

        The scrub clears every bit of logical state.  It cannot touch
        the analog domain -- that is the vulnerability.
        """
        region = self.region(instance.region_name)
        if instance.instance_id not in region._rented:
            raise TenancyError(
                f"instance {instance.instance_id} is not rented in "
                f"{region.name!r}"
            )
        instance.device.wipe()
        del region._rented[instance.instance_id]
        region._free.append(
            _PooledDevice(
                device=instance.device, released_at_hours=self.clock_hours
            )
        )
        instance.active = False

    # -- time --------------------------------------------------------------

    def advance(self, hours: float) -> None:
        """Advance the global clock.

        Every device in every region experiences the interval: rented
        devices run their loaded designs (powered, stressing), free
        devices idle (annealing).
        """
        if hours < 0.0:
            raise CloudError(f"cannot advance time by {hours} hours")
        if hours == 0.0:
            return
        for region in self._regions.values():
            ambient_k = region.ambient.at(self.clock_hours)
            for device in region.devices():
                device.advance_hours(hours, ambient_k)
        self.clock_hours += hours
