"""Tenancy billing: the economics of renting (and attacking) FPGAs.

Every attack in the paper pays by the instance-hour -- the 200-hour
burn-ins, the flash attack's hoard of instances, the sequential
extractor's early release all have price tags.  The meter charges each
tenant for wall-clock time holding instances, so benches and examples
can report attack *cost* next to attack accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CloudError

#: On-demand price of an f1.2xlarge, USD per instance-hour.
F1_INSTANCE_HOURLY_USD = 1.65


@dataclass(frozen=True)
class LedgerEntry:
    """One completed tenancy's charge."""

    tenant: str
    instance_id: int
    hours: float
    amount_usd: float


@dataclass
class BillingMeter:
    """Attach to a provider to meter every tenancy.

    Usage::

        meter = BillingMeter.attach(provider)
        ... rent / advance / release ...
        print(meter.total_for("attacker"))

    The meter wraps the provider's ``rent``/``release``; instances still
    open at ``total_for`` time are charged up to the current clock.
    """

    provider: object
    hourly_usd: float = F1_INSTANCE_HOURLY_USD
    _open: dict = field(default_factory=dict)
    _ledger: list = field(default_factory=list)

    @classmethod
    def attach(cls, provider, hourly_usd: float = F1_INSTANCE_HOURLY_USD):
        """Wrap a provider's rent/release with this meter."""
        if hourly_usd <= 0.0:
            raise CloudError("hourly rate must be positive")
        meter = cls(provider=provider, hourly_usd=hourly_usd)
        original_rent = provider.rent
        original_release = provider.release

        def metered_rent(region_name, tenant):
            """rent() plus a meter entry."""
            instance = original_rent(region_name, tenant)
            meter._open[instance.instance_id] = (
                tenant, provider.clock_hours
            )
            return instance

        def metered_release(instance):
            """release() plus closing the meter entry."""
            original_release(instance)
            meter._close(instance.instance_id)

        provider.rent = metered_rent
        provider.release = metered_release
        return meter

    def _close(self, instance_id: int) -> None:
        if instance_id not in self._open:
            return
        tenant, started = self._open.pop(instance_id)
        hours = self.provider.clock_hours - started
        self._ledger.append(
            LedgerEntry(
                tenant=tenant,
                instance_id=instance_id,
                hours=hours,
                amount_usd=hours * self.hourly_usd,
            )
        )

    def ledger(self) -> list[LedgerEntry]:
        """Completed charges, oldest first."""
        return list(self._ledger)

    def total_for(self, tenant: str) -> float:
        """Total charges for a tenant, including still-open tenancies."""
        total = sum(
            entry.amount_usd for entry in self._ledger
            if entry.tenant == tenant
        )
        for open_tenant, started in self._open.values():
            if open_tenant == tenant:
                total += (self.provider.clock_hours - started) * self.hourly_usd
        return total

    def hours_for(self, tenant: str) -> float:
        """Total instance-hours held by a tenant."""
        hours = sum(
            entry.hours for entry in self._ledger if entry.tenant == tenant
        )
        for open_tenant, started in self._open.values():
            if open_tenant == tenant:
                hours += self.provider.clock_hours - started
        return hours
