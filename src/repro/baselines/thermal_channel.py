"""The temporal thermal covert channel (Tian & Szefer, FPGA'19).

A transmitter tenant heats the die (bit 1) or idles (bit 0) before
releasing the FPGA; the next tenant reads the residual temperature
through a delay sensor.  Works -- but die temperature relaxes to ambient
with a time constant of a couple of minutes, so the receiver must win
the reallocation race.  The comparison bench puts numbers on the
contrast with BTI remanence (hundreds of hours).

Note the deployability caveat the paper raises: the original channel's
heaters are ring-oscillator banks, which AWS-style DRC rejects
(:mod:`repro.fabric.drc`); it was demonstrated on infrastructure without
that scan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

#: Die-to-ambient thermal relaxation time constant, minutes ("the cloud
#: FPGAs return to ambient temperatures within a few minutes").
THERMAL_TAU_MINUTES = 2.0


@dataclass
class TransientThermalState:
    """First-order thermal lag of one die."""

    ambient_c: float = 38.0
    temperature_c: float = 38.0
    tau_minutes: float = THERMAL_TAU_MINUTES

    def advance(self, minutes: float, power_watts: float,
                theta_ja_c_per_w: float = 0.35) -> None:
        """Relax towards the steady state for the applied power."""
        if minutes < 0.0:
            raise ConfigurationError(f"minutes must be >= 0, got {minutes}")
        target = self.ambient_c + theta_ja_c_per_w * power_watts
        decay = math.exp(-minutes / self.tau_minutes)
        self.temperature_c = target + (self.temperature_c - target) * decay

    @property
    def excess_c(self) -> float:
        """Temperature above ambient."""
        return self.temperature_c - self.ambient_c


@dataclass
class ThermalChannel:
    """One transmitter-to-receiver covert exchange across a tenancy gap.

    Attributes:
        heater_watts: transmitter power while sending a 1.
        heat_minutes: per-bit heating slot.
        sensor_noise_c: receiver's temperature-read noise (delay-sensor
            calibration and supply noise).
    """

    heater_watts: float = 60.0
    heat_minutes: float = 10.0
    sensor_noise_c: float = 0.5
    seed: SeedLike = None
    _rng: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.heater_watts <= 0.0 or self.heat_minutes <= 0.0:
            raise ConfigurationError("heater parameters must be positive")
        self._rng = make_rng(self.seed)

    def transmit_and_receive(
        self, bits: Sequence[int], handoff_gap_minutes: float
    ) -> list[int]:
        """Send each bit through one heat-release-measure cycle.

        Each bit gets a fresh thermal state (sequential slots with a
        cool-down would behave the same through the linear model); the
        receiver reads temperature ``handoff_gap_minutes`` after the
        transmitter releases and thresholds at half the expected
        excess.
        """
        if handoff_gap_minutes < 0.0:
            raise ConfigurationError("handoff gap must be >= 0")
        received = []
        for bit in bits:
            if bit not in (0, 1):
                raise ConfigurationError(f"bits must be 0/1, got {bit!r}")
            state = TransientThermalState()
            state.advance(self.heat_minutes,
                          self.heater_watts if bit else 0.0)
            # The board idles in the pool during the handoff.
            state.advance(handoff_gap_minutes, 0.0)
            reading = state.excess_c + float(
                self._rng.normal(0.0, self.sensor_noise_c)
            )
            threshold = self._expected_peak_excess() / 2.0 * math.exp(
                -handoff_gap_minutes / THERMAL_TAU_MINUTES
            )
            received.append(int(reading > max(threshold, 3 * self.sensor_noise_c / 2)))
        return received

    def _expected_peak_excess(self) -> float:
        steady = 0.35 * self.heater_watts
        return steady * (1.0 - math.exp(-self.heat_minutes / THERMAL_TAU_MINUTES))

    def accuracy_at_gap(
        self, handoff_gap_minutes: float, bits: int = 64
    ) -> float:
        """Decode accuracy of a random payload at a given handoff gap."""
        payload = [int(b) for b in self._rng.integers(0, 2, bits)]
        decoded = self.transmit_and_receive(payload, handoff_gap_minutes)
        hits = sum(1 for a, b in zip(payload, decoded) if a == b)
        return hits / bits
