"""LUT-SRAM data imprinting (Zick et al., FPL'14).

Long-held values imprint SRAM configuration cells too; Zick et al.
recovered LUT contents on a local Kintex-7 -- with a 922-hour burn, an
off-chip reference oscillator, and femtosecond-level effective timing
resolution.  The paper rules this resource out for cloud attacks: "their
burn-in effects are too subtle to measure with cloud FPGA sensors, which
is why they required femtosecond precision.  On-chip TDCs operate at
approximately 10 ps precision on the UltraScale+".

This module models the SRAM output-buffer imprint at the magnitudes
that work implies and provides the detectability calculation showing
*why* routing (not LUT SRAM) is the right cloud target: the per-cell
delay signature sits two orders of magnitude below the routing imprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, PhysicsError
from repro.physics.constants import REFERENCE_STRESS_HOURS

#: Delay signature of one imprinted SRAM cell's output buffer after the
#: reference burn (ps).  Two orders below a routing switch's imprint --
#: a single pass transistor pair against a whole route's worth of
#: stressed interconnect.
SRAM_IMPRINT_PS_AT_REFERENCE = 0.004

#: Zick et al.'s burn duration (hours) and effective timing resolution
#: (ps) with the off-chip reference oscillator.
ZICK_BURN_HOURS = 922.0
ZICK_RESOLUTION_PS = 0.001

#: Effective resolution of a cloud-deployable TDC after the standard
#: trace averaging (per-measurement sigma).
CLOUD_TDC_RESOLUTION_PS = 0.3


@dataclass
class SramImprintCell:
    """One LUT configuration cell's imprint state."""

    held_value: int
    burn_hours: float

    def __post_init__(self) -> None:
        if self.held_value not in (0, 1):
            raise PhysicsError(f"held value must be 0/1, got {self.held_value}")
        if self.burn_hours < 0.0:
            raise PhysicsError("burn hours must be >= 0")

    @property
    def delay_signature_ps(self) -> float:
        """Signed read-path delay shift after the burn."""
        magnitude = SRAM_IMPRINT_PS_AT_REFERENCE * (
            self.burn_hours / REFERENCE_STRESS_HOURS
        ) ** 0.35 if self.burn_hours > 0 else 0.0
        return magnitude if self.held_value else -magnitude


def sram_imprint_detectable(
    burn_hours: float,
    sensor_resolution_ps: float,
    measurements: int = 1600,
    required_snr: float = 3.0,
) -> bool:
    """Whether a sensor can read one cell's imprint.

    The decision statistic averages ``measurements`` reads; detection
    needs the imprint to clear ``required_snr`` standard errors.
    """
    if sensor_resolution_ps <= 0.0:
        raise ConfigurationError("sensor resolution must be positive")
    if measurements <= 0:
        raise ConfigurationError("measurements must be positive")
    cell = SramImprintCell(held_value=1, burn_hours=burn_hours)
    standard_error = sensor_resolution_ps / math.sqrt(measurements)
    return cell.delay_signature_ps >= required_snr * standard_error


def detectability_summary() -> dict[str, bool]:
    """The Section 7 comparison in one dict.

    Zick et al.'s lab setup reads the imprint; a cloud TDC does not --
    which is why the paper targets programmable routing instead.
    """
    return {
        "zick_lab_sensor": sram_imprint_detectable(
            ZICK_BURN_HOURS, ZICK_RESOLUTION_PS
        ),
        "cloud_tdc": sram_imprint_detectable(
            ZICK_BURN_HOURS, CLOUD_TDC_RESOLUTION_PS
        ),
        "cloud_tdc_200h": sram_imprint_detectable(
            200.0, CLOUD_TDC_RESOLUTION_PS
        ),
    }
