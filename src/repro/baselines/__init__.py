"""Related-work baselines (Section 7 of the paper).

Three prior single-tenant channels, implemented so their limitations --
the reasons the paper's BTI channel is stronger -- are measurable:

* :mod:`repro.baselines.thermal_channel` -- Tian & Szefer's temporal
  thermal covert channel: heat encodes bits, but "the cloud FPGAs
  return to ambient temperatures within a few minutes", so the channel
  dies if the receiver is late.  The BTI imprint survives hundreds of
  hours.
* :mod:`repro.baselines.sram_imprint` -- Zick et al.'s LUT-SRAM burn-in
  recovery: real, but its delay signature is an order of magnitude
  below what cloud-deployable TDCs resolve ("their burn-in effects are
  too subtle to measure with cloud FPGA sensors, which is why they
  required femtosecond precision").
* the ring-oscillator sensor lives in :mod:`repro.sensor.ro` (it is an
  alternative *sensor* rather than an alternative channel).
"""

from repro.baselines.thermal_channel import (
    ThermalChannel,
    TransientThermalState,
)
from repro.baselines.sram_imprint import (
    SramImprintCell,
    sram_imprint_detectable,
)

__all__ = [
    "SramImprintCell",
    "ThermalChannel",
    "TransientThermalState",
    "sram_imprint_detectable",
]
