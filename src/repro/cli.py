"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro exp1 --quick
    python -m repro exp2 --seed 7
    python -m repro exp3 --quick --recovery-hours 20
    python -m repro sweep exp1 --seeds 1:16 --jobs 4
    python -m repro table1 --compare
    python -m repro exp1 --quick --trace --metrics-out run.json
    python -m repro sweep exp1 --seeds 1:8 --jobs 4 --trace spans.jsonl
    python -m repro sweep exp1 --seeds 1:64 --jobs 4 --resume sweep.journal
    python -m repro chaos exp1 --quick
    python -m repro chaos sweep --experiment exp2 --seeds 1:8 --jobs 2
    python -m repro fleet --quick --fault-plan plans/fleet-chaos-default.json
    python -m repro fleet --quick --seeds 1:4 --resume fleet.journal
    python -m repro profile exp1 --quick
    python -m repro bench diff OLD_BENCH.json BENCH_perf.json --gate 80
    python -m repro runs list --experiment exp1
    python -m repro runs compare latest~1 latest --gate
    python -m repro report --history --output history.html

Every sub-command accepts the observability flags: ``--trace`` prints
the run's span tree (experiment -> phase -> capture; give it a FILE to
also write the forest as JSON Lines), ``--metrics-out FILE`` writes
the metrics registry, span tree and run manifest as one JSON document,
and ``--chrome-trace FILE`` exports the spans in the Chrome Trace
Event Format for Perfetto / ``chrome://tracing``.

Additionally every experiment/sweep/chaos/profile/bench invocation is
recorded into the run store (``.repro/runs.db`` by default;
``--runstore PATH`` / ``REPRO_RUNSTORE`` override, value ``off``
disables, as does ``--no-record``), and ``--progress auto|tty|jsonl|
off`` streams live progress to stderr while long runs execute.  The
recorded history is queried with ``repro runs list|show|compare|
export|gc`` and rendered with ``repro report --history``.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from dataclasses import replace
from typing import Optional, Sequence

from repro import __version__
from repro.errors import ReproError
from repro.experiments import (
    Experiment1Config,
    Experiment2Config,
    Experiment3Config,
    render_experiment_panels,
    run_experiment1,
    run_experiment2,
    run_experiment3,
)
from repro.observability import trace
from repro.opentitan import build_table1, render_table1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Pentimento reproduction: regenerate the paper's experiments "
            "on the simulated substrate."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def observability(p: argparse.ArgumentParser) -> None:
        """The flag set every sub-command carries."""
        p.add_argument("--trace", nargs="?", const=True, default=False,
                       metavar="FILE",
                       help="collect and print the run's span tree; with "
                            "FILE, also write it as JSON Lines (one root "
                            "span per line, worker spans included)")
        p.add_argument("--metrics-out", type=str, default=None,
                       metavar="FILE",
                       help="write metrics + spans + manifest as JSON")
        p.add_argument("--chrome-trace", type=str, default=None,
                       metavar="FILE",
                       help="export spans as Chrome Trace Event JSON "
                            "(open in Perfetto or chrome://tracing); "
                            "implies span collection")
        p.add_argument("--runstore", type=str, default=None,
                       metavar="PATH",
                       help="run-store database to record into (default: "
                            ".repro/runs.db or $REPRO_RUNSTORE; 'off' "
                            "disables recording)")
        p.add_argument("--no-record", action="store_true",
                       help="do not record this invocation in the run "
                            "store")
        p.add_argument("--progress", type=str, default="auto",
                       choices=("auto", "tty", "jsonl", "off"),
                       help="live progress on stderr: a rewritten status "
                            "line (tty), one JSON object per event "
                            "(jsonl), or nothing; 'auto' shows the tty "
                            "view only on a terminal (default)")

    def common(p: argparse.ArgumentParser) -> None:
        """Flags shared by every experiment sub-command."""
        p.add_argument("--quick", action="store_true",
                       help="shrunken config for smoke runs")
        p.add_argument("--seed", type=int, default=None,
                       help="experiment seed (default: the config's)")
        p.add_argument("--no-figure", action="store_true",
                       help="suppress the ASCII figure panels")
        p.add_argument("--output", type=str, default=None, metavar="FILE",
                       help="archive the full result (series + "
                            "provenance) as JSON")
        observability(p)

    p1 = sub.add_parser("exp1", help="Experiment 1 / Figure 6 (lab)")
    common(p1)
    p1.add_argument("--burn-hours", type=int, default=None)
    p1.add_argument("--recovery-hours", type=int, default=None)

    p2 = sub.add_parser("exp2", help="Experiment 2 / Figure 7 (cloud TM1)")
    common(p2)
    p2.add_argument("--burn-hours", type=int, default=None)

    p3 = sub.add_parser("exp3", help="Experiment 3 / Figure 8 (cloud TM2)")
    common(p3)
    p3.add_argument("--recovery-hours", type=int, default=None)

    pt = sub.add_parser("table1", help="Table 1 (OpenTitan study)")
    pt.add_argument("--seed", type=int, default=1)
    pt.add_argument("--compare", action="store_true",
                    help="interleave the paper's published rows")
    observability(pt)

    ps = sub.add_parser(
        "sweep",
        help="Monte Carlo seed sweep of an experiment (robustness)",
    )
    ps.add_argument("experiment", choices=("exp1", "exp2", "exp3"))
    ps.add_argument("--seeds", type=str, default="1:8", metavar="SPEC",
                    help="comma-separated seeds and A:B inclusive ranges, "
                         "e.g. '1,2,5' or '1:20' (default: 1:8)")
    ps.add_argument("--jobs", type=str, default="1", metavar="N",
                    help="worker processes to shard the seeds over, or "
                         "'auto' for one per CPU; requests beyond the "
                         "machine are clamped (default: 1, sequential)")
    ps.add_argument("--paper", action="store_true",
                    help="paper-scale configs (default: quick)")
    ps.add_argument("--resume", type=str, default=None, metavar="PATH",
                    help="journal per-seed completions to PATH and skip "
                         "seeds already recorded there (checkpoint/"
                         "resume; the resumed result is bit-identical "
                         "to an uninterrupted run)")
    observability(ps)

    pc = sub.add_parser(
        "chaos",
        help="run an experiment under a fault storm and gate on the "
             "documented recovery-accuracy bound",
    )
    pc.add_argument("target", choices=("exp1", "exp2", "exp3", "sweep"),
                    help="experiment to storm, or 'sweep' for a Monte "
                         "Carlo chaos sweep")
    pc.add_argument("--experiment", choices=("exp1", "exp2", "exp3"),
                    default="exp1",
                    help="experiment for 'chaos sweep' (default: exp1)")
    pc.add_argument("--quick", action="store_true", default=True,
                    help="shrunken configs (the default)")
    pc.add_argument("--paper", action="store_true",
                    help="paper-scale configs instead of quick")
    pc.add_argument("--seed", type=int, default=0,
                    help="experiment seed for a single chaos run "
                         "(default: 0)")
    pc.add_argument("--plan", type=str, default=None, metavar="FILE",
                    help="fault plan JSON (default: the committed "
                         "default storm, plans/chaos-default.json)")
    pc.add_argument("--seeds", type=str, default="1:4", metavar="SPEC",
                    help="seed spec for 'chaos sweep' (default: 1:4)")
    pc.add_argument("--jobs", type=str, default="1", metavar="N",
                    help="worker processes for 'chaos sweep' "
                         "(default: 1)")
    pc.add_argument("--resume", type=str, default=None, metavar="PATH",
                    help="checkpoint journal for 'chaos sweep'")
    observability(pc)

    pr = sub.add_parser(
        "report",
        help="run every evaluation artefact and emit a markdown report",
    )
    pr.add_argument("--scale", choices=("quick", "paper"), default="quick")
    pr.add_argument("--seed", type=int, default=1)
    pr.add_argument("--output", type=str, default=None, metavar="FILE",
                    help="write the report to a file instead of stdout")
    pr.add_argument("--history", action="store_true",
                    help="render the run store's cross-run history as a "
                         "self-contained HTML report (accuracy trends, "
                         "latency percentiles, counter deltas) instead "
                         "of running the evaluation artefacts")
    pr.add_argument("--experiment", choices=("exp1", "exp2", "exp3"),
                    default=None,
                    help="restrict --history to one experiment")
    pr.add_argument("--limit", type=int, default=50,
                    help="runs per trend series in --history "
                         "(default: 50)")
    observability(pr)

    pp = sub.add_parser(
        "profile",
        help="run one experiment under tracing and print wall-time "
             "attribution (per-phase self vs children)",
    )
    pp.add_argument("experiment", choices=("exp1", "exp2", "exp3"))
    pp.add_argument("--quick", action="store_true",
                    help="shrunken config for smoke runs")
    pp.add_argument("--seed", type=int, default=None,
                    help="experiment seed (default: the config's)")
    pp.add_argument("--json", dest="profile_json", type=str, default=None,
                    metavar="FILE",
                    help="also write the attribution report as JSON")
    observability(pp)

    pf = sub.add_parser(
        "fleet",
        help="fleet-scale event-driven cloud simulation: attacker "
             "campaigns over a churning board pool, or a pure-churn "
             "throughput run",
    )
    pf.add_argument("--campaign", choices=("flash", "scan", "churn"),
                    default="flash",
                    help="flash re-acquisition race, marketplace "
                         "scanning, or a pure-churn throughput run "
                         "(default: flash)")
    pf.add_argument("--devices", type=int, default=None,
                    help="fleet size (default: 1024; churn: 100000)")
    pf.add_argument("--horizon-hours", type=float, default=None,
                    help="simulated horizon (default: 336)")
    pf.add_argument("--victims", type=int, default=None,
                    help="victim tenancies to stage (default: 4)")
    pf.add_argument("--arrivals", type=int, default=None,
                    help="churn run only: background arrivals to replay "
                         "(default: 500000)")
    pf.add_argument("--engine", choices=("bulk", "reference"),
                    default="bulk",
                    help="churn engine: vectorised windows or the "
                         "per-event reference (default: bulk)")
    pf.add_argument("--batch-hours", type=float, default=None,
                    help="cap bulk windows at this many simulated hours "
                         "(results are batch-invariant; default: "
                         "unbounded)")
    pf.add_argument("--arrival-rate", type=float, default=None,
                    help="background arrivals per hour (default: "
                         "scaled to the fleet)")
    pf.add_argument("--mean-rental", type=float, default=None,
                    help="mean background rental hours (default: 12)")
    pf.add_argument("--seed", type=int, default=1,
                    help="scenario seed (default: 1)")
    pf.add_argument("--quick", action="store_true",
                    help="shrunken scenario for smoke runs")
    pf.add_argument("--output", type=str, default=None, metavar="FILE",
                    help="write the campaign result as JSON")
    pf.add_argument("--series", type=str, default=None, metavar="FILE",
                    help="record sim-time telemetry (pool occupancy, "
                         "aging debt, recovery yield, ...) and write the "
                         "series document to FILE; also lands in the "
                         "run store and the Chrome trace")
    pf.add_argument("--series-cadence", type=float, default=1.0,
                    metavar="HOURS",
                    help="sim-hours between flight-recorder samples "
                         "(default: 1.0)")
    pf.add_argument("--fault-plan", type=str, default=None, metavar="FILE",
                    help="fleet fault plan JSON (failed/partial wipes, "
                         "region outages, preemption storms, board "
                         "retirements, thermal excursions); see "
                         "plans/fleet-chaos-default.json.  Results stay "
                         "bit-identical across --engine/--batch-hours")
    pf.add_argument("--seeds", type=str, default=None, metavar="SPEC",
                    help="run the campaign as a multi-seed sweep over "
                         "this seed spec (e.g. '1:8'); reports mean "
                         "recovery yield (flash/scan only)")
    pf.add_argument("--resume", type=str, default=None, metavar="PATH",
                    help="with --seeds: journal per-seed campaigns to "
                         "PATH and resume a killed sweep bit-identically")
    observability(pf)

    pb = sub.add_parser("bench", help="benchmark-suite utilities")
    bench_sub = pb.add_subparsers(dest="bench_command", required=True)
    pbd = bench_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json suites key by key; optionally "
             "fail past a regression threshold",
    )
    pbd.add_argument("old", help="baseline suite JSON (e.g. the "
                                 "committed BENCH_perf.json)")
    pbd.add_argument("new", help="freshly generated suite JSON")
    pbd.add_argument("--gate", type=float, default=None, metavar="PCT",
                     help="exit nonzero if any benchmark regressed by "
                          "more than PCT percent (omit to report only)")
    pbd.add_argument("--json", dest="bench_json", type=str, default=None,
                     metavar="FILE",
                     help="also write the comparison (per-key deltas and "
                          "gate verdicts) as one JSON document")

    pu = sub.add_parser(
        "runs",
        help="query the run store: list, inspect, statistically compare "
             "and prune recorded runs",
    )
    runs_sub = pu.add_subparsers(dest="runs_command", required=True)

    def runstore_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--runstore", type=str, default=None,
                       metavar="PATH",
                       help="run-store database (default: .repro/runs.db "
                            "or $REPRO_RUNSTORE)")

    pul = runs_sub.add_parser("list", help="recorded runs, newest first")
    runstore_flag(pul)
    pul.add_argument("--kind", type=str, default=None,
                     help="filter by kind (experiment/sweep/chaos/"
                          "profile/bench)")
    pul.add_argument("--experiment", type=str, default=None,
                     help="filter by experiment (exp1/exp2/exp3)")
    pul.add_argument("--limit", type=int, default=20,
                     help="most recent N runs (default: 20)")
    pul.add_argument("--json", dest="runs_json", action="store_true",
                     help="print the summaries as JSON")

    pus = runs_sub.add_parser(
        "show", help="one run in full (manifest, metrics, seed rows)"
    )
    runstore_flag(pus)
    pus.add_argument("ref", help="run id prefix, 'latest' or 'latest~N'")
    pus.add_argument("--json", dest="runs_json", action="store_true",
                     help="print the full stored row as JSON")

    puc = runs_sub.add_parser(
        "compare",
        help="statistically compare two recorded runs (bootstrap CI + "
             "rank test on per-seed accuracy and latency reservoirs)",
    )
    runstore_flag(puc)
    puc.add_argument("ref_a", help="baseline run (id prefix / latest~N)")
    puc.add_argument("ref_b", help="new run (id prefix / latest~N)")
    puc.add_argument("--experiment", type=str, default=None,
                     help="resolve latest/latest~N within one experiment")
    puc.add_argument("--gate", action="store_true",
                     help="exit nonzero when a CONFIRMED regression is "
                          "found (the CI gate)")
    puc.add_argument("--min-effect-pct", type=float, default=5.0,
                     metavar="PCT",
                     help="effect-size floor below which a drift is OK "
                          "(default: 5)")
    puc.add_argument("--alpha", type=float, default=0.05,
                     help="rank-test significance level (default: 0.05)")
    puc.add_argument("--json", dest="runs_json", type=str, default=None,
                     metavar="FILE",
                     help="also write the comparison as one JSON "
                          "document ('-' for stdout)")

    pue = runs_sub.add_parser(
        "export", help="selected runs (full rows) as one JSON document"
    )
    runstore_flag(pue)
    pue.add_argument("--output", type=str, default=None, metavar="FILE",
                     help="write to FILE instead of stdout")
    pue.add_argument("--kind", type=str, default=None)
    pue.add_argument("--experiment", type=str, default=None)
    pue.add_argument("--limit", type=int, default=None)

    pug = runs_sub.add_parser(
        "gc", help="prune old runs from the store"
    )
    runstore_flag(pug)
    pug.add_argument("--keep", type=int, default=None, metavar="N",
                     help="retain only the N newest runs")
    pug.add_argument("--before-days", type=float, default=None,
                     metavar="D",
                     help="drop runs started more than D days ago")
    pug.add_argument("--vacuum", action="store_true",
                     help="compact the database file afterwards")
    return parser


def _archive(result, args) -> None:
    if getattr(args, "output", None):
        from repro.persistence import save_experiment

        path = save_experiment(result, args.output)
        print(f"archived to {path}")


def _override(config, args, fields: Sequence[str]):
    updates = {}
    for field in fields:
        value = getattr(args, field, None)
        if value is not None:
            updates[field] = value
    if args.seed is not None:
        updates["seed"] = args.seed
    return replace(config, **updates) if updates else config


def _finish_observability(args) -> int:
    """Print the span tree / write the export files after a command.

    Returns 0, or 1 if an export file could not be written (the run
    itself already happened, so the tree is still printed first).
    """
    if getattr(args, "trace", False):
        rendered = trace.render_tree()
        if rendered:
            print("\n-- span tree " + "-" * 27)
            print(rendered)
    trace_file = getattr(args, "trace", None)
    if isinstance(trace_file, str):
        from repro.observability.export import write_spans_jsonl

        try:
            path = write_spans_jsonl(trace_file)
        except OSError as exc:
            print(f"repro: cannot write spans to {trace_file}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"spans written to {path}")
    chrome_trace = getattr(args, "chrome_trace", None)
    if chrome_trace:
        from repro.observability.timeline import write_trace_events

        try:
            path = write_trace_events(
                chrome_trace,
                sim_series=getattr(args, "_sim_recorder", None),
            )
        except OSError as exc:
            print(f"repro: cannot write Chrome trace to {chrome_trace}: "
                  f"{exc}", file=sys.stderr)
            return 1
        print(f"Chrome trace written to {path} "
              f"(open in https://ui.perfetto.dev)")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.observability.export import write_metrics_json
        from repro.observability.manifest import build_manifest

        manifest = build_manifest(
            config=getattr(args, "_config", None),
            argv=list(sys.argv),
            include_spans=False,
        )
        try:
            path = write_metrics_json(metrics_out, manifest=manifest.to_dict())
        except OSError as exc:
            print(f"repro: cannot write metrics to {metrics_out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"metrics written to {path}")
    return 0


def _cmd_fleet(args) -> int:
    import json as _json
    import math as _math
    from pathlib import Path

    from repro.cloud.campaigns import (
        ChurnModel,
        FleetScenario,
        FlashAttackPlan,
        ScanPlan,
        run_churn_benchmark,
        run_flash_campaign,
        run_scan_campaign,
    )

    if args.campaign == "churn":
        for flag, value in (("--fault-plan", args.fault_plan),
                            ("--seeds", args.seeds),
                            ("--resume", args.resume)):
            if value:
                print(f"repro: {flag} applies to flash/scan campaigns, "
                      f"not the pure-churn benchmark", file=sys.stderr)
                return 2
    if args.resume and not args.seeds:
        print("repro: --resume requires --seeds (it journals a "
              "multi-seed sweep)", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        from repro.reliability.fleet_chaos import load_fleet_fault_plan

        fault_plan = load_fleet_fault_plan(args.fault_plan)
        args._fault_plan = fault_plan.to_dict()

    recorder = None
    if args.series:
        from repro.observability.timeseries import FlightRecorder

        recorder = FlightRecorder(cadence_hours=args.series_cadence)

    def _save_series() -> None:
        if recorder is None:
            return
        recorder.save(args.series)
        print(f"sim-time series written to {args.series} "
              f"({len(recorder.names())} series)")
        args._series = recorder.to_dict()
        args._sim_recorder = recorder

    if args.campaign == "churn":
        devices = args.devices or (10_000 if args.quick else 100_000)
        arrivals = args.arrivals or (50_000 if args.quick else 500_000)
        stats = run_churn_benchmark(
            devices=devices,
            arrivals=arrivals,
            seed=args.seed,
            engine=args.engine,
            batch_hours=args.batch_hours or _math.inf,
            arrival_rate_per_hour=args.arrival_rate or 60.0,
            recorder=recorder,
        )
        _save_series()
        args._config = {
            "campaign": "churn", "devices": devices,
            "arrivals": arrivals, "engine": args.engine,
            "seed": args.seed,
        }
        args._extra = {"fleet": stats}
        print(f"churn [{args.engine}]: {stats['events']} lifecycle "
              f"events over {devices} boards in "
              f"{stats['seconds']:.3f}s "
              f"({stats['events_per_second']:,.0f} events/sec, "
              f"{stats['dropped_arrivals']} capacity misses)")
        if args.output:
            Path(args.output).write_text(_json.dumps(stats, indent=1))
            print(f"written to {args.output}")
        return 0

    devices = args.devices or (256 if args.quick else 1024)
    horizon = args.horizon_hours or (200.0 if args.quick else 336.0)
    victims = args.victims or (2 if args.quick else 4)
    # Default churn keeps the pool about half-occupied so campaigns see
    # contention without starving.
    rate = (args.arrival_rate if args.arrival_rate is not None
            else devices / 48.0)
    rental = args.mean_rental or 12.0
    scenario = FleetScenario(
        devices=devices,
        horizon_hours=horizon,
        churn=ChurnModel(arrival_rate_per_hour=rate,
                         mean_rental_hours=rental),
        routes=4 if args.quick else 8,
        seed=args.seed,
        engine=args.engine,
        batch_hours=args.batch_hours or _math.inf,
    )
    attack_plan = (FlashAttackPlan(victims=victims)
                   if args.campaign == "flash"
                   else ScanPlan(victims=victims))
    args._config = {
        "campaign": args.campaign, "devices": devices,
        "horizon_hours": horizon, "victims": victims,
        "engine": args.engine, "arrival_rate_per_hour": rate,
        "mean_rental_hours": rental, "seed": args.seed,
    }

    if args.seeds:
        from repro.cloud.campaigns import (
            fleet_journal_context,
            run_fleet_sweep,
        )

        try:
            seeds = parse_seed_spec(args.seeds)
        except ValueError as exc:
            print(f"repro: invalid --seeds spec {args.seeds!r}: {exc}",
                  file=sys.stderr)
            return 2
        journal = None
        if args.resume:
            from repro.reliability.checkpoint import SweepJournal

            journal = SweepJournal.load(args.resume, context=(
                fleet_journal_context(
                    scenario, args.campaign, attack_plan=attack_plan,
                    fault_plan=fault_plan,
                )
            ))
        args._config["seeds"] = [int(s) for s in seeds]
        sweep = run_fleet_sweep(
            scenario, seeds, campaign=args.campaign,
            attack_plan=attack_plan, fault_plan=fault_plan,
            journal=journal, recorder=recorder,
        )
        _save_series()
        args._accuracy = sweep.mean_yield
        args._extra = {"fleet_sweep": sweep.to_dict()}
        print(f"{args.campaign} sweep [{args.engine}] over {devices} "
              f"boards, {horizon:.0f}h horizon, {len(seeds)} seeds:")
        for seed, payload in zip(sweep.seeds, sweep.results):
            payload = payload or {}
            recovered = payload.get("recovered", "-")
            print(f"  seed {seed:<6} yield "
                  f"{payload.get('recovery_yield', 0.0):.2f}  "
                  f"recovered {recovered}")
        print(f"  mean recovery yield {sweep.mean_yield:.3f}")
        if args.resume:
            print(f"journal: {args.resume}")
        if sweep.resumed_seeds:
            print(f"resumed {sweep.resumed_seeds} seed(s) from the "
                  f"journal")
        if args.output:
            Path(args.output).write_text(
                _json.dumps(sweep.to_dict(), indent=1)
            )
            print(f"written to {args.output}")
        return 0

    if args.campaign == "flash":
        result = run_flash_campaign(
            scenario, attack_plan, recorder=recorder,
            fault_plan=fault_plan,
        )
    else:
        result = run_scan_campaign(
            scenario, attack_plan, recorder=recorder,
            fault_plan=fault_plan,
        )
    _save_series()
    args._accuracy = result.recovery_yield
    args._extra = {"fleet": result.to_dict()}
    print(f"{args.campaign} campaign [{args.engine}] over {devices} "
          f"boards, {horizon:.0f}h horizon:")
    print(f"  victims attempted   {result.victims_attempted} "
          f"(+{result.victims_skipped} skipped on capacity)")
    print(f"  recovered           {result.recovered}")
    print(f"  recovery yield      {result.recovery_yield:.2f}")
    print(f"  mean accuracy       {result.mean_accuracy:.2f}")
    print(f"  boards probed       {result.boards_probed}")
    print(f"  lifecycle events    {result.lifecycle_events}"
          f" (+{result.tracked_events} tracked)")
    print(f"  capacity misses     {result.dropped_arrivals}")
    if fault_plan is not None:
        ledger = ", ".join(f"{site}={count}" for site, count
                           in sorted(result.faults.items())) or "none"
        print(f"  faults injected     {ledger}")
        print(f"  failed wipes        {result.failed_wipes} "
              f"(+{result.partial_wipes} partial)")
        print(f"  preempted/retired   {result.preempted}/"
              f"{result.retired_boards} (rent retries "
              f"{result.rent_retries})")
        for region, status in sorted(result.region_status.items()):
            print(f"  region {region:<12} {status['status']} "
                  f"({status['boards']} boards, "
                  f"{status['retired']} retired, "
                  f"{status['outage_hours']:.0f}h dark)")
    if args.output:
        Path(args.output).write_text(
            _json.dumps(result.to_dict(), indent=1)
        )
        print(f"written to {args.output}")
    return 0


def _cmd_exp1(args) -> int:
    base = (Experiment1Config.quick() if args.quick
            else Experiment1Config.paper())
    config = _override(base, args, ("burn_hours", "recovery_hours"))
    args._config = config
    result = run_experiment1(config)
    args._accuracy = result.recovery_score.accuracy
    args._route_status = result.route_status
    if not args.no_figure:
        print(render_experiment_panels(
            result.bundle, "Figure 6 (Experiment 1, lab)",
            stress_change_hour=result.stress_change_hour,
        ))
    print(f"\n{result.recovery_score}")
    _archive(result, args)
    return 0


def _cmd_exp2(args) -> int:
    base = (Experiment2Config.quick() if args.quick
            else Experiment2Config.paper())
    config = _override(base, args, ("burn_hours",))
    args._config = config
    result = run_experiment2(config)
    args._accuracy = result.recovery_score.accuracy
    args._route_status = result.route_status
    if not args.no_figure:
        print(render_experiment_panels(
            result.bundle, "Figure 7 (Experiment 2, cloud TM1)"
        ))
    print(f"\n{result.recovery_score}")
    accuracy = {k: round(v, 2) for k, v in result.accuracy_by_length().items()}
    print(f"accuracy by length: {accuracy}")
    _archive(result, args)
    return 0


def _cmd_exp3(args) -> int:
    base = (Experiment3Config.quick() if args.quick
            else Experiment3Config.paper())
    config = _override(base, args, ("recovery_hours",))
    args._config = config
    result = run_experiment3(config)
    args._accuracy = result.recovery_score.accuracy
    args._route_status = result.route_status
    if not args.no_figure:
        print(render_experiment_panels(
            result.bundle, "Figure 8 (Experiment 3, cloud TM2)"
        ))
    print(f"\n{result.recovery_score}")
    accuracy = {k: round(v, 2) for k, v in result.accuracy_by_length().items()}
    print(f"accuracy by length: {accuracy}")
    print(f"boards probed: {result.devices_probed}")
    _archive(result, args)
    return 0


def parse_seed_spec(spec: str) -> list[int]:
    """Expand a ``--seeds`` spec: comma list with A:B inclusive ranges."""
    seeds: list[int] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            lo_text, hi_text = token.split(":", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"empty range {token!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(token))
    if not seeds:
        raise ValueError("no seeds given")
    return seeds


def _parse_sweep_spec(args):
    """Parse ``--seeds``/``--jobs``; returns (seeds, jobs) or None after
    printing a diagnostic (the caller then exits 2)."""
    try:
        seeds = parse_seed_spec(args.seeds)
    except ValueError as exc:
        print(f"repro: invalid --seeds spec {args.seeds!r}: {exc}",
              file=sys.stderr)
        return None
    if args.jobs == "auto":
        return seeds, "auto"
    try:
        jobs = int(args.jobs)
    except ValueError:
        print(f"repro: --jobs must be an integer or 'auto', "
              f"got {args.jobs!r}", file=sys.stderr)
        return None
    if jobs < 1:
        print(f"repro: --jobs must be >= 1, got {jobs}",
              file=sys.stderr)
        return None
    return seeds, jobs


def _cmd_sweep(args) -> int:
    from repro.montecarlo import experiment_sweep

    parsed = _parse_sweep_spec(args)
    if parsed is None:
        return 2
    seeds, jobs = parsed
    args._config = {
        "experiment": args.experiment,
        "quick": not args.paper,
        "seeds": [int(s) for s in seeds],
    }
    args._jobs = jobs if isinstance(jobs, int) else None
    result = experiment_sweep(
        args.experiment, seeds, quick=not args.paper, jobs=jobs,
        journal_path=args.resume,
    )
    args._accuracy = result.mean
    print(result)
    print(f"min={result.minimum:.3f} max={result.maximum:.3f} "
          f"seeds={len(seeds)} jobs={args.jobs}")
    if args.resume:
        print(f"journal: {args.resume}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.reliability.chaos import (
        CHAOS_ACCURACY_BOUNDS,
        run_chaos,
        run_chaos_sweep,
    )

    plan = None
    if args.plan:
        from repro.reliability.faults import load_fault_plan

        plan = load_fault_plan(args.plan)
    quick = not args.paper
    from repro.reliability.chaos import default_chaos_plan

    args._fault_plan = (plan or default_chaos_plan(args.seed)).to_dict()
    if args.target == "sweep":
        parsed = _parse_sweep_spec(args)
        if parsed is None:
            return 2
        seeds, jobs = parsed
        args._config = {
            "experiment": args.experiment,
            "quick": quick,
            "seeds": [int(s) for s in seeds],
        }
        args._jobs = jobs if isinstance(jobs, int) else None
        result = run_chaos_sweep(
            args.experiment, seeds, quick=quick, jobs=jobs, plan=plan,
            journal_path=args.resume,
        )
        args._accuracy = result.mean
        print(result)
        bound = CHAOS_ACCURACY_BOUNDS.get(args.experiment, 0.5)
        verdict = "within bound" if result.minimum >= bound else "BELOW BOUND"
        print(f"min={result.minimum:.3f} bound={bound:.2f} ({verdict}) "
              f"seeds={len(seeds)} jobs={args.jobs}")
        if result.minimum < bound:
            print(f"repro: chaos sweep of {args.experiment} fell below "
                  f"the documented bound", file=sys.stderr)
            return 1
        return 0
    args._config = {
        "experiment": args.target, "quick": quick, "seed": args.seed,
    }
    report = run_chaos(args.target, quick=quick, seed=args.seed, plan=plan)
    args._accuracy = report.accuracy
    print(report)
    if not report.passed:
        print(f"repro: chaos {args.target} fell below the documented "
              f"bound", file=sys.stderr)
        return 1
    return 0


def _cmd_table1(args) -> int:
    rows = build_table1(seed=args.seed)
    print(render_table1(rows, compare=args.compare))
    return 0


_EXPERIMENT_RUNNERS = {
    "exp1": (Experiment1Config, run_experiment1),
    "exp2": (Experiment2Config, run_experiment2),
    "exp3": (Experiment3Config, run_experiment3),
}


def _cmd_profile(args) -> int:
    from time import perf_counter

    from repro.observability.profile import build_report, render_report

    config_cls, runner = _EXPERIMENT_RUNNERS[args.experiment]
    config = config_cls.quick() if args.quick else config_cls.paper()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    args._config = config
    trace.enable()
    start = perf_counter()
    result = runner(config)
    wall = perf_counter() - start
    report = build_report(wall_s=wall)
    report["experiment"] = args.experiment
    args._accuracy = result.recovery_score.accuracy
    print(render_report(report))
    print(f"\n{result.recovery_score}")
    if args.profile_json:
        import json as _json
        from pathlib import Path

        Path(args.profile_json).write_text(_json.dumps(report, indent=1))
        print(f"profile written to {args.profile_json}")
    return 0


def _cmd_bench(args) -> int:
    from repro.errors import ConfigurationError
    from repro.observability.benchdiff import (
        deltas_to_dict,
        diff_suites,
        gate_failures,
        load_suite,
        render_deltas,
    )

    try:
        deltas = diff_suites(load_suite(args.old), load_suite(args.new))
        failures = (gate_failures(deltas, args.gate)
                    if args.gate is not None else [])
    except ConfigurationError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    summary = deltas_to_dict(deltas, gate_pct=args.gate)
    args._config = {"old": args.old, "new": args.new, "gate": args.gate}
    args._extra = {"bench_diff": summary}
    if args.bench_json:
        import json as _json
        from pathlib import Path

        Path(args.bench_json).write_text(_json.dumps(summary, indent=1))
        print(f"bench diff written to {args.bench_json}")
    print(render_deltas(deltas, gate_pct=args.gate))
    if failures:
        print(f"\nbench diff: {len(failures)} benchmark(s) regressed past "
              f"the {args.gate:g}% gate:", file=sys.stderr)
        for delta in failures:
            print(f"  {delta.key}: {delta.old:g} -> {delta.new:g} "
                  f"({delta.regression_pct:+.1f}% worse)", file=sys.stderr)
        return 1
    if args.gate is not None:
        print(f"bench diff: no regression past the {args.gate:g}% gate")
    return 0


def _cmd_report(args) -> int:
    if args.history:
        return _cmd_report_history(args)
    from repro.reporting import generate_reproduction_report

    report = generate_reproduction_report(scale=args.scale, seed=args.seed)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _open_runstore(args):
    """The run store named by ``--runstore``/env, or None + diagnostic.

    Query verbs never create the database: an absent file means nothing
    was recorded yet, which is a message, not an empty schema on disk.
    """
    from repro.observability.runstore import RunStore, resolve_runstore_path

    path = resolve_runstore_path(getattr(args, "runstore", None))
    if path is None:
        print("repro: the run store is disabled (REPRO_RUNSTORE=off); "
              "pass --runstore PATH", file=sys.stderr)
        return None
    if not path.exists():
        print(f"repro: no run store at {path} -- nothing has been "
              f"recorded yet", file=sys.stderr)
        return None
    return RunStore(path)


def _cmd_report_history(args) -> int:
    from repro.observability.history import render_history_html

    store = _open_runstore(args)
    if store is None:
        return 2
    html = render_history_html(
        store, experiment=args.experiment, limit=args.limit
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(html)
        print(f"history written to {args.output}")
    else:
        print(html)
    return 0


def _cmd_runs(args) -> int:
    import json as _json

    from repro.observability import analytics

    store = _open_runstore(args)
    if store is None:
        return 2

    if args.runs_command == "list":
        runs = store.list_runs(kind=args.kind, experiment=args.experiment,
                               limit=args.limit)
        if args.runs_json:
            print(_json.dumps(runs, indent=1))
            return 0
        if not runs:
            print("(no runs)")
            return 0
        print(f"{'run':<14} {'kind':<10} {'exp':<5} {'outcome':<8} "
              f"{'accuracy':>9} {'wall_s':>8}  {'config':<14} git")
        for run in runs:
            acc = run.get("accuracy")
            wall = run.get("wall_seconds")
            git = run.get("git_revision") or "-"
            if run.get("git_dirty"):
                git += "+"
            print(f"{run['run_id'][:12]:<14} {run['kind']:<10} "
                  f"{(run.get('experiment') or '-'):<5} "
                  f"{run['outcome']:<8} "
                  f"{(f'{acc:.4f}' if acc is not None else '-'):>9} "
                  f"{(f'{wall:.2f}' if wall is not None else '-'):>8}  "
                  f"{(run.get('config_hash') or '-'):<14} {git}")
        print(f"{len(runs)} run(s) in {store.path}")
        return 0

    if args.runs_command == "show":
        run = store.get_run(store.resolve(args.ref))
        if args.runs_json:
            print(_json.dumps(run, indent=1, default=str))
            return 0
        print(f"run       {run['run_id']}")
        print(f"kind      {run['kind']}"
              + (f"  ({run['experiment']})" if run.get("experiment")
                 else ""))
        print(f"outcome   {run['outcome']}"
              + (f"  exit={run['exit_code']}"
                 if run.get("exit_code") is not None else ""))
        for key in ("accuracy", "wall_seconds", "seed", "jobs",
                    "config_hash", "fault_plan_hash", "git_revision"):
            if run.get(key) is not None:
                print(f"{key:<9} {run[key]}")
        if run.get("git_dirty"):
            print("git_dirty yes (uncommitted changes at record time)")
        if run.get("config"):
            print(f"config    {_json.dumps(run['config'], sort_keys=True)}")
        if run.get("kernels"):
            print(f"kernels   {run['kernels']}")
        if run.get("route_status"):
            print(f"routes    {run['route_status']}")
        if run.get("seed_results"):
            values = [r["value"] for r in run["seed_results"]
                      if r["value"] is not None]
            print(f"seeds     {len(run['seed_results'])} recorded"
                  + (f", mean={sum(values) / len(values):.4f}"
                     if values else ""))
        if run.get("argv"):
            print(f"argv      {' '.join(run['argv'])}")
        return 0

    if args.runs_command == "compare":
        comparison = analytics.compare_runs(
            store, args.ref_a, args.ref_b,
            alpha=args.alpha, min_effect_pct=args.min_effect_pct,
            experiment=args.experiment,
        )
        print(analytics.render_comparison(comparison))
        if args.runs_json:
            document = _json.dumps(comparison.to_dict(), indent=1)
            if args.runs_json == "-":
                print(document)
            else:
                from pathlib import Path

                Path(args.runs_json).write_text(document)
                print(f"comparison written to {args.runs_json}")
        if args.gate and comparison.regressions:
            print(f"repro: runs compare: {len(comparison.regressions)} "
                  f"CONFIRMED regression(s)", file=sys.stderr)
            return 1
        return 0

    if args.runs_command == "export":
        document = _json.dumps(
            store.export_runs(kind=args.kind, experiment=args.experiment,
                              limit=args.limit),
            indent=1, default=str,
        )
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(document)
            print(f"exported to {args.output}")
        else:
            print(document)
        return 0

    if args.runs_command == "gc":
        before_unix = None
        if args.before_days is not None:
            import time as _time

            before_unix = _time.time() - args.before_days * 86400.0
        removed = store.gc(keep=args.keep, before_unix=before_unix,
                           vacuum=args.vacuum)
        print(f"removed {removed} run(s); {store.count_runs()} remain")
        return 0

    print(f"repro: unknown runs sub-command {args.runs_command!r}",
          file=sys.stderr)
    return 2


_HANDLERS = {
    "exp1": _cmd_exp1,
    "exp2": _cmd_exp2,
    "exp3": _cmd_exp3,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
    "table1": _cmd_table1,
    "report": _cmd_report,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "runs": _cmd_runs,
}

#: Commands whose invocations land in the run store (query/meta verbs
#: like ``table1``, ``report`` and ``runs`` itself do not).
_RECORDED_KINDS = {
    "exp1": "experiment",
    "exp2": "experiment",
    "exp3": "experiment",
    "sweep": "sweep",
    "chaos": "chaos",
    "fleet": "fleet",
    "profile": "profile",
    "bench": "bench",
}


def _run_experiment_name(args) -> Optional[str]:
    """Which experiment a recorded invocation belongs to, if any."""
    if args.command in ("exp1", "exp2", "exp3"):
        return args.command
    if args.command in ("sweep", "profile"):
        return args.experiment
    if args.command == "chaos":
        return (args.experiment if args.target == "sweep"
                else args.target)
    if args.command == "fleet":
        return "fleet"
    return None


def _record_run(args, store_path, collector, outcome, exit_code,
                started_unix, wall_seconds) -> None:
    """Persist one invocation; a recording failure warns, never fails
    the run it describes."""
    from repro.errors import PersistenceError
    from repro.observability.manifest import build_manifest
    from repro.observability.metrics import registry
    from repro.observability.runstore import RunRecord, RunStore

    manifest = build_manifest(
        config=getattr(args, "_config", None),
        argv=list(sys.argv),
        include_spans=False,
        include_metrics=False,  # metrics travel losslessly below
    )
    extra = dict(getattr(args, "_extra", None) or {})
    if collector is not None:
        if collector.event_counts:
            extra["events"] = dict(collector.event_counts)
        if collector.phases:
            extra["phases"] = [p["name"] for p in collector.phases]
    record = RunRecord(
        kind=_RECORDED_KINDS[args.command],
        experiment=_run_experiment_name(args),
        started_unix=started_unix,
        wall_seconds=wall_seconds,
        outcome=outcome,
        exit_code=exit_code,
        accuracy=getattr(args, "_accuracy", None),
        seed=manifest.seed,
        jobs=getattr(args, "_jobs", None),
        config=manifest.config,
        fault_plan=getattr(args, "_fault_plan", None),
        manifest=manifest.to_dict(),
        metrics_state=registry.dump_state(),
        route_status=getattr(args, "_route_status", None),
        argv=list(sys.argv[1:]),
        seed_rows=collector.seed_rows if collector is not None else (),
        extra=extra,
        series=getattr(args, "_series", None),
    )
    try:
        with RunStore(store_path) as store:
            store.record_run(record)
    except PersistenceError as exc:
        print(f"repro: run not recorded: {exc}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    import time as _time
    from time import perf_counter

    args = build_parser().parse_args(argv)

    handler = _HANDLERS.get(args.command)
    if handler is None:
        # A sub-parser was registered without a handler: a programming
        # error here, but the user still gets a diagnostic, not silence.
        print(f"repro: no handler for command {args.command!r}",
              file=sys.stderr)
        return 2

    if getattr(args, "trace", False) or getattr(args, "chrome_trace", None):
        trace.enable()

    from repro.observability import progress as _progress

    store_path = None
    collector = None
    view = None
    if args.command in _RECORDED_KINDS:
        if not getattr(args, "no_record", False):
            from repro.observability.runstore import resolve_runstore_path

            store_path = resolve_runstore_path(
                getattr(args, "runstore", None)
            )
        if store_path is not None:
            collector = _progress.CollectingEmitter()
        view = _progress.make_progress(getattr(args, "progress", None))
    emitter = _progress.compose(view, collector)
    previous = _progress.set_emitter(emitter) if emitter is not None else None

    started_unix = _time.time()
    t0 = perf_counter()
    outcome = "ok"
    try:
        code = handler(args)
        outcome = "ok" if not code else "failed"
    except ReproError as exc:
        # One actionable line for the operator; the stack only under
        # REPRO_DEBUG=1 (it names internals, not the fix).
        if os.environ.get("REPRO_DEBUG") == "1":
            traceback.print_exc(file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        outcome, code = "error", 2
    finally:
        if emitter is not None:
            emitter.close()
            _progress.set_emitter(previous)
    if store_path is not None:
        _record_run(args, store_path, collector, outcome, code,
                    started_unix, perf_counter() - t0)
    if outcome == "error":
        return 2
    finish_code = _finish_observability(args)
    return code or finish_code


if __name__ == "__main__":
    sys.exit(main())
