"""Result persistence: archive experiment outputs as JSON.

Multi-hundred-hour experiments (even simulated ones) deserve durable
artefacts: :func:`save_bundle` / :func:`load_bundle` round-trip a
:class:`~repro.analysis.timeseries.SeriesBundle` with full fidelity, and
:func:`save_experiment` wraps any of the experiment drivers' results
with their provenance (config, scores, versions) so a results directory
is self-describing.

Schema history:

* **v1** -- series bundle + flat provenance fields;
* **v2** -- adds a top-level ``"manifest"`` key: the full
  :class:`~repro.observability.manifest.RunManifest` (package version,
  interpreter, platform, seed, config, span tree, metrics snapshot)
  of the run that produced the archive.

Readers accept both versions; v1 archives simply load with no manifest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.errors import AnalysisError, PersistenceError
from repro.analysis.timeseries import DeltaPsSeries, SeriesBundle

#: Schema marker so future readers can migrate old archives.
SCHEMA_VERSION = 2

#: Every schema version this build can read (v1: pre-manifest archives).
SUPPORTED_SCHEMAS = (1, 2)

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the target's directory so the final rename
    never crosses filesystems; a crash mid-write leaves at worst a stray
    ``.tmp`` file, never a truncated archive.  Every writer in this
    module (and the reliability layer's journals/plans) goes through
    here.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or Path("."),
        prefix=f".{target.name}.", suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def _read_json(source: Path, what: str) -> dict:
    """Parse a persistence-layer JSON file, naming it on corruption."""
    try:
        return json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"{what} {source} is corrupt or truncated: {exc}"
        ) from exc


def _check_schema(schema, what: str) -> int:
    """Validate an archive's schema marker, naming both versions."""
    if schema not in SUPPORTED_SCHEMAS:
        raise AnalysisError(
            f"{what} was written at schema version {schema!r}, but this "
            f"build writes version {SCHEMA_VERSION} and reads versions "
            f"{SUPPORTED_SCHEMAS}"
        )
    return int(schema)


def bundle_to_dict(bundle: SeriesBundle) -> dict:
    """A JSON-ready representation of a series bundle."""
    return {
        "schema": SCHEMA_VERSION,
        "label": bundle.label,
        "series": [
            {
                "route_name": series.route_name,
                "nominal_delay_ps": series.nominal_delay_ps,
                "burn_value": series.burn_value,
                "hours": list(series.hours),
                "raw_delta_ps": list(series.raw_delta_ps),
            }
            for series in bundle
        ],
    }


def bundle_from_dict(payload: dict) -> SeriesBundle:
    """Rebuild a series bundle from its JSON representation.

    Accepts every schema in :data:`SUPPORTED_SCHEMAS`; the series shape
    is identical across v1 and v2.
    """
    if not isinstance(payload, dict) or "series" not in payload:
        raise AnalysisError("payload is not a serialised bundle")
    _check_schema(payload.get("schema"), "bundle")
    bundle = SeriesBundle(label=payload.get("label", "restored"))
    for entry in payload["series"]:
        series = DeltaPsSeries(
            route_name=entry["route_name"],
            nominal_delay_ps=float(entry["nominal_delay_ps"]),
            burn_value=entry.get("burn_value"),
        )
        hours = entry["hours"]
        values = entry["raw_delta_ps"]
        if len(hours) != len(values):
            raise AnalysisError(
                f"series {series.route_name!r}: hours/values misaligned"
            )
        for hour, value in zip(hours, values):
            series.append(float(hour), float(value))
        bundle.add(series)
    return bundle


def save_bundle(bundle: SeriesBundle, path: PathLike) -> Path:
    """Write a bundle to a JSON file atomically; returns the path."""
    return atomic_write_text(path, json.dumps(bundle_to_dict(bundle), indent=1))


def load_bundle(path: PathLike) -> SeriesBundle:
    """Read a bundle back from :func:`save_bundle` output.

    Raises :class:`~repro.errors.PersistenceError` (naming the file)
    when the JSON is corrupt/truncated or keys are missing.
    """
    source = Path(path)
    if not source.exists():
        raise AnalysisError(f"no archive at {source}")
    try:
        return bundle_from_dict(_read_json(source, "bundle"))
    except (KeyError, TypeError) as exc:
        raise PersistenceError(
            f"bundle {source} is missing required data: {exc!r}"
        ) from exc


def save_experiment(
    result, path: PathLike, manifest: Optional[dict] = None
) -> Path:
    """Archive an experiment driver's result with provenance.

    Works with any of the Experiment*Result dataclasses: the config, the
    oracle burn values, the recovery score, and the full series bundle
    are stored.  A v2 archive also embeds a run manifest -- by default
    one built now from the result's config plus the process's span tree
    and metrics; pass ``manifest`` (a dict) to embed a caller-built one
    instead.
    """
    from repro import __version__
    from repro.observability.manifest import build_manifest

    if manifest is None:
        manifest = build_manifest(config=result.config).to_dict()
    payload = {
        "schema": SCHEMA_VERSION,
        "repro_version": __version__,
        "result_type": type(result).__name__,
        "config": dataclasses.asdict(result.config),
        "burn_values": list(result.burn_values),
        "recovery": {
            "total_bits": result.recovery_score.total_bits,
            "correct_bits": result.recovery_score.correct_bits,
            "accuracy": result.recovery_score.accuracy,
        },
        "manifest": manifest,
        "bundle": bundle_to_dict(result.bundle),
    }
    return atomic_write_text(path, json.dumps(payload, indent=1))


def load_experiment_bundle(path: PathLike) -> tuple[dict, SeriesBundle]:
    """Read back an experiment archive: (metadata, bundle).

    The metadata carries every top-level key except the bundle itself;
    for v2 archives that includes the ``"manifest"`` dict, for v1
    archives the key is absent.
    """
    source = Path(path)
    if not source.exists():
        raise AnalysisError(f"no archive at {source}")
    payload = _read_json(source, "archive")
    if "bundle" not in payload:
        raise AnalysisError(f"{source} is not an experiment archive")
    _check_schema(payload.get("schema"), f"archive {source}")
    try:
        bundle = bundle_from_dict(payload["bundle"])
    except (KeyError, TypeError) as exc:
        raise PersistenceError(
            f"archive {source} is missing required data: {exc!r}"
        ) from exc
    metadata = {k: v for k, v in payload.items() if k != "bundle"}
    return metadata, bundle


def load_manifest(path: PathLike) -> Optional[dict]:
    """The embedded run manifest of an archive, or ``None`` for v1."""
    metadata, _ = load_experiment_bundle(path)
    return metadata.get("manifest")
