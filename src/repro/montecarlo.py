"""Monte Carlo robustness sweeps.

Single-seed results can flatter or slander an attack; the paper's
claims are statistical.  :func:`run_monte_carlo` repeats any
seed-parameterised metric over a seed set and summarises the
distribution, and :func:`experiment_sweep` wraps the three experiment
drivers so robustness numbers (mean recovery accuracy with a
percentile interval) are one call away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry

_log = get_logger("montecarlo")


@dataclass(frozen=True)
class MonteCarloResult:
    """Distribution summary of one metric over seeds."""

    metric_name: str
    seeds: tuple[int, ...]
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean of the metric over seeds."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation over seeds."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return float(np.max(self.values))

    def percentile_interval(self, coverage: float = 0.9) -> tuple[float, float]:
        """Central percentile interval of the observed values."""
        if not 0.0 < coverage < 1.0:
            raise AnalysisError("coverage must be in (0, 1)")
        tail = (1.0 - coverage) / 2.0 * 100.0
        lo, hi = np.percentile(self.values, [tail, 100.0 - tail])
        return float(lo), float(hi)

    def __str__(self) -> str:
        lo, hi = self.percentile_interval()
        return (
            f"{self.metric_name}: {self.mean:.3f} +/- {self.std:.3f} "
            f"(90% interval [{lo:.3f}, {hi:.3f}], n={len(self.values)})"
        )


def run_monte_carlo(
    metric: Callable[[int], float],
    seeds: Sequence[int],
    metric_name: str = "metric",
) -> MonteCarloResult:
    """Evaluate ``metric(seed)`` for every seed and summarise."""
    from time import perf_counter

    if not seeds:
        raise ConfigurationError("need at least one seed")
    values = []
    with trace.span("montecarlo", metric=metric_name, seeds=len(seeds)):
        for seed in seeds:
            start = perf_counter()
            with trace.span("montecarlo.seed", seed=int(seed)):
                values.append(float(metric(int(seed))))
            registry.counter(
                "montecarlo_runs_total", "seeded metric evaluations"
            ).inc()
            registry.histogram(
                "montecarlo_run_seconds", "wall time per seeded evaluation"
            ).observe(perf_counter() - start)
    _log.info("monte_carlo_done", metric=metric_name, n=len(seeds))
    return MonteCarloResult(
        metric_name=metric_name, seeds=tuple(int(s) for s in seeds),
        values=tuple(values),
    )


def experiment_sweep(
    experiment: str,
    seeds: Sequence[int],
    quick: bool = True,
    config_overrides: Optional[dict] = None,
) -> MonteCarloResult:
    """Recovery-accuracy distribution of one experiment over seeds.

    ``experiment`` is ``"exp1"``, ``"exp2"`` or ``"exp3"``; ``quick``
    selects the shrunken configs; ``config_overrides`` are applied with
    :func:`dataclasses.replace`.
    """
    import dataclasses

    from repro.experiments import (
        Experiment1Config,
        Experiment2Config,
        Experiment3Config,
        run_experiment1,
        run_experiment2,
        run_experiment3,
    )

    registry = {
        "exp1": (Experiment1Config, run_experiment1),
        "exp2": (Experiment2Config, run_experiment2),
        "exp3": (Experiment3Config, run_experiment3),
    }
    if experiment not in registry:
        raise ConfigurationError(
            f"unknown experiment {experiment!r}; choose from "
            f"{sorted(registry)}"
        )
    config_cls, runner = registry[experiment]

    def metric(seed: int) -> float:
        """Recovery accuracy of one seeded run."""
        config = (config_cls.quick(seed=seed) if quick
                  else config_cls.paper(seed=seed))
        if config_overrides:
            config = dataclasses.replace(config, **config_overrides)
        return runner(config).recovery_score.accuracy

    return run_monte_carlo(
        metric, seeds, metric_name=f"{experiment} recovery accuracy"
    )
