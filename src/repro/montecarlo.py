"""Monte Carlo robustness sweeps.

Single-seed results can flatter or slander an attack; the paper's
claims are statistical.  :func:`run_monte_carlo` repeats any
seed-parameterised metric over a seed set and summarises the
distribution, and :func:`experiment_sweep` wraps the three experiment
drivers so robustness numbers (mean recovery accuracy with a
percentile interval) are one call away.

Both accept ``jobs``: with ``jobs > 1`` the seed set shards across a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Seeds are fully
independent evaluations, so the sharded sweep returns a bit-identical
:class:`MonteCarloResult` to the sequential one -- results are
collected in submission order -- and each worker ships its metrics
registry *and its span forest* back to be merged into the parent's, so
``captures_total`` and friends still reflect the whole sweep and
``--trace`` under ``--jobs N`` shows every worker's subtree (tagged
with ``worker_pid``/``shard``) instead of only the parent's skeleton.

A worker whose metric raises still ships whatever partial metrics and
spans it accumulated before failing: the parent merges every shard's
state first and re-raises the original exception afterwards, so a
crash late in a long sweep does not silently discard the telemetry of
the seeds that did complete.

``jobs`` may also be ``"auto"`` (one worker per available CPU), and
explicit values are clamped to the machine: oversubscribing a host
with more workers than CPUs was measured *slower* than sequential
(0.89x at ``jobs=2`` on one CPU), so requests the hardware cannot
honour fall back to the sequential path with a log line instead of
silently degrading throughput.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from multiprocessing import shared_memory
from time import perf_counter
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.observability.progress import note_phase, note_seed_done

_log = get_logger("montecarlo")


@dataclass(frozen=True)
class MonteCarloResult:
    """Distribution summary of one metric over seeds."""

    metric_name: str
    seeds: tuple[int, ...]
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean of the metric over seeds."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation over seeds."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return float(np.min(self.values))

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return float(np.max(self.values))

    def percentile_interval(self, coverage: float = 0.9) -> tuple[float, float]:
        """Central percentile interval of the observed values."""
        if not 0.0 < coverage < 1.0:
            raise AnalysisError("coverage must be in (0, 1)")
        tail = (1.0 - coverage) / 2.0 * 100.0
        lo, hi = np.percentile(self.values, [tail, 100.0 - tail])
        return float(lo), float(hi)

    def __str__(self) -> str:
        lo, hi = self.percentile_interval()
        return (
            f"{self.metric_name}: {self.mean:.3f} +/- {self.std:.3f} "
            f"(90% interval [{lo:.3f}, {hi:.3f}], n={len(self.values)})"
        )


def _available_cpus() -> int:
    """CPUs this process may use (separate function so tests can patch)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Union[int, str], n_seeds: int) -> int:
    """Resolve a requested ``jobs`` value to an effective worker count.

    ``"auto"`` asks for one worker per available CPU.  Explicit integer
    requests are validated (``>= 1``) and then clamped to the CPU count
    and the seed count -- extra workers past either bound only add
    scheduling overhead.  Returns the number of workers actually worth
    spawning (``1`` means run sequentially).
    """
    cpus = _available_cpus()
    if isinstance(jobs, str):
        if jobs != "auto":
            raise ConfigurationError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            )
        requested = cpus
    else:
        requested = int(jobs)
        if requested < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    effective = min(requested, cpus, n_seeds)
    if effective < requested:
        _log.info("jobs_clamped", requested=requested, effective=effective,
                  cpus=cpus, seeds=n_seeds)
    return effective


def _require_picklable(metric: Callable[[int], float]) -> None:
    try:
        pickle.dumps(metric)
    except Exception as exc:
        raise ConfigurationError(
            "jobs > 1 requires a picklable metric (a module-level "
            f"function or functools.partial of one): {exc}"
        ) from exc


def _record_seed_run(elapsed_seconds: float) -> None:
    registry.counter(
        "montecarlo_runs_total", "seeded metric evaluations"
    ).inc()
    registry.histogram(
        "montecarlo_run_seconds", "wall time per seeded evaluation"
    ).observe(elapsed_seconds)


@dataclass
class _SeedOutcome:
    """Everything a worker ships back to the parent for one seed.

    ``value`` is ``None`` exactly when the metric raised; the partial
    ``metrics_state``/``trace_state`` are shipped either way, so a
    failed shard still contributes its telemetry to the merged view.
    ``error`` carries the original exception when it pickles (the
    common case) and its formatted traceback text always.
    """

    seed: int
    pid: int
    elapsed_s: float
    metrics_state: dict = field(default_factory=dict)
    trace_state: dict = field(default_factory=dict)
    value: Optional[float] = None
    error: Optional[BaseException] = None
    error_text: Optional[str] = None


def _evaluate_seed(
    metric: Callable[[int], float], seed: int, collect_spans: bool = False
) -> _SeedOutcome:
    """Worker-side evaluation: value, wall time, metrics and spans.

    Resets the (forked/fresh) worker observability state first so the
    returned dumps hold exactly what this one seed produced.  The
    evaluation runs inside a ``montecarlo.seed`` span when the parent
    is tracing, mirroring the sequential path's tree shape.  A raising
    metric is caught so the partial state still makes it back; the
    parent re-raises after merging.
    """
    registry.reset()
    trace.clear()
    if collect_spans:
        trace.enable()
    else:
        trace.disable()
    start = perf_counter()
    value = error = error_text = None
    try:
        with trace.span("montecarlo.seed", seed=int(seed)):
            value = float(metric(int(seed)))
    except Exception as exc:
        error = exc
        error_text = _traceback.format_exc()
    outcome = _SeedOutcome(
        seed=int(seed),
        pid=os.getpid(),
        elapsed_s=perf_counter() - start,
        metrics_state=registry.dump_state(),
        trace_state=trace.dump_state() if collect_spans else {},
        value=value,
        error=error,
        error_text=error_text,
    )
    if error is not None:
        try:
            pickle.dumps(outcome)
        except Exception:
            # The metric's exception does not pickle; ship the
            # traceback text and let the parent raise on our behalf.
            outcome = dataclasses.replace(outcome, error=None)
    return outcome


#: Per-seed slot layout in the shared result array.
_SHM_STATUS, _SHM_VALUE, _SHM_ELAPSED, _SHM_PID = range(4)
_SHM_FIELDS = 4
_SHM_OK = 1.0
_SHM_FAILED = 2.0


def _attach_result_slots(
    shm_name: str, n_slots: int
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to the sweep's shared result array by name."""
    shm = shared_memory.SharedMemory(name=shm_name)
    slots = np.ndarray(
        (n_slots, _SHM_FIELDS), dtype=np.float64, buffer=shm.buf
    )
    return shm, slots


@dataclass
class _ShardShipment:
    """Telemetry a worker pickles back when scalars travel via shm.

    The per-seed scalars (status, value, wall time, pid) land in the
    shared result array; only the structured blobs that genuinely need
    serialisation -- the metrics registry dump, the span forest and a
    possible exception -- ride the pickle channel.
    """

    seed: int
    metrics_state: dict = field(default_factory=dict)
    trace_state: dict = field(default_factory=dict)
    error: Optional[BaseException] = None
    error_text: Optional[str] = None


def _evaluate_seed_to_shm(
    metric: Callable[[int], float],
    seed: int,
    index: int,
    shm_name: str,
    n_slots: int,
    collect_spans: bool = False,
) -> _ShardShipment:
    """Worker-side evaluation writing its scalars into shared memory."""
    outcome = _evaluate_seed(metric, seed, collect_spans)
    shm, slots = _attach_result_slots(shm_name, n_slots)
    try:
        slot = slots[index]
        slot[_SHM_STATUS] = _SHM_FAILED if outcome.value is None else _SHM_OK
        slot[_SHM_VALUE] = (
            np.nan if outcome.value is None else outcome.value
        )
        slot[_SHM_ELAPSED] = outcome.elapsed_s
        slot[_SHM_PID] = float(outcome.pid)
        del slot, slots
    finally:
        # Close the attachment only; the segment belongs to the parent.
        # (Pool workers are forked, so the attach re-registers the name
        # with the same resource tracker the parent used -- a set, so
        # the duplicate is harmless and the parent's unlink clears it.)
        shm.close()
    return _ShardShipment(
        seed=outcome.seed,
        metrics_state=outcome.metrics_state,
        trace_state=outcome.trace_state,
        error=outcome.error,
        error_text=outcome.error_text,
    )


def _resume_from_journal(journal, seeds: Sequence[int]) -> dict[int, float]:
    """Replay journaled seeds: values plus their metric/span state.

    The journal entries carry their original ``dump_id``s, so merging
    is idempotent; the counters and (for parallel-journaled runs) span
    forests of skipped seeds land in the parent exactly as a live run
    of those seeds would have left them.
    """
    collect_spans = trace.is_enabled()
    resumed: dict[int, float] = {}
    for index, seed in enumerate(seeds):
        if seed not in journal:
            continue
        entry = journal.get(seed)
        state = entry.get("metrics_state")
        if state:
            registry.merge_state(state)
        trace_state = entry.get("trace_state")
        if collect_spans and trace_state:
            trace.merge_state(trace_state, shard=index, resumed=True)
        resumed[seed] = float(entry["value"])
        note_seed_done(seed, resumed[seed], resumed=True)
        registry.counter(
            "sweep_seeds_resumed_total",
            "sweep seeds skipped via a resume journal",
        ).inc()
    if resumed:
        _log.info("seeds_resumed", n=len(resumed),
                  journal=str(journal.path))
    return resumed


def _run_sequential(
    metric: Callable[[int], float], seeds: Sequence[int], journal=None
) -> list[float]:
    values = []
    for seed in seeds:
        start = perf_counter()
        if journal is None:
            with trace.span("montecarlo.seed", seed=int(seed)):
                values.append(float(metric(int(seed))))
            elapsed = perf_counter() - start
            _record_seed_run(elapsed)
            note_seed_done(int(seed), values[-1], elapsed_s=elapsed)
            continue
        # Journaled: isolate this seed's metric deltas so the journal
        # entry replays exactly them on resume.  The finally block
        # restores the parent state even on a crash or Ctrl-C, and the
        # journal gains an entry only for a *completed* seed.
        parent_state = registry.dump_state()
        registry.reset()
        try:
            with trace.span("montecarlo.seed", seed=int(seed)):
                value = float(metric(int(seed)))
            _record_seed_run(perf_counter() - start)
        finally:
            seed_state = registry.dump_state()
            registry.reset()
            registry.merge_state(parent_state)
            registry.merge_state(seed_state)
        journal.record(int(seed), value, metrics_state=seed_state)
        values.append(value)
        note_seed_done(int(seed), value, elapsed_s=perf_counter() - start)
    return values


def _run_parallel(
    metric: Callable[[int], float], seeds: Sequence[int], jobs: int,
    journal=None,
) -> list[float]:
    """Shard the seeds over worker processes.

    Per-seed scalars (value, wall time, worker pid, success flag) come
    back through one :mod:`multiprocessing.shared_memory` result array
    -- workers write their slot in place, nothing scalar is pickled --
    while the structured metrics/span blobs still ship via
    ``dump_state`` pickles and merge in submission order, keeping the
    sharded sweep bit-identical to the sequential one.
    """
    _require_picklable(metric)
    collect_spans = trace.is_enabled()
    values = []
    first_failure = None  # (shipment, worker pid)
    shm = shared_memory.SharedMemory(
        create=True, size=len(seeds) * _SHM_FIELDS * 8
    )
    try:
        slots = np.ndarray(
            (len(seeds), _SHM_FIELDS), dtype=np.float64, buffer=shm.buf
        )
        slots[:] = 0.0
        with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
            futures = [
                pool.submit(
                    _evaluate_seed_to_shm, metric, int(seed), index,
                    shm.name, len(seeds), collect_spans,
                )
                for index, seed in enumerate(seeds)
            ]
            # Collect in submission order: result ordering (and hence
            # the MonteCarloResult) is deterministic regardless of which
            # worker finishes first.
            try:
                for shard, (seed, future) in enumerate(zip(seeds, futures)):
                    shipment = future.result()
                    status = float(slots[shard, _SHM_STATUS])
                    elapsed = float(slots[shard, _SHM_ELAPSED])
                    pid = int(slots[shard, _SHM_PID])
                    if status != _SHM_OK:
                        registry.merge_state(shipment.metrics_state)
                        if collect_spans and shipment.trace_state:
                            trace.merge_state(
                                shipment.trace_state, shard=shard
                            )
                        registry.counter(
                            "montecarlo_worker_failures_total",
                            "seeded evaluations that raised in a worker",
                        ).inc()
                        _log.info("worker_seed_failed", seed=shipment.seed,
                                  pid=pid)
                        if first_failure is None:
                            first_failure = (shipment, pid)
                        continue
                    value = float(slots[shard, _SHM_VALUE])
                    if journal is None:
                        registry.merge_state(shipment.metrics_state)
                        if collect_spans and shipment.trace_state:
                            trace.merge_state(
                                shipment.trace_state, shard=shard
                            )
                        _record_seed_run(elapsed)
                    else:
                        # Journaled: fold the parent-side per-seed
                        # accounting into the same state the journal
                        # stores, so a resume replays it all in one
                        # merge.
                        parent_state = registry.dump_state()
                        registry.reset()
                        registry.merge_state(shipment.metrics_state)
                        _record_seed_run(elapsed)
                        entry_state = registry.dump_state()
                        registry.reset()
                        registry.merge_state(parent_state)
                        registry.merge_state(entry_state)
                        if collect_spans and shipment.trace_state:
                            trace.merge_state(
                                shipment.trace_state, shard=shard
                            )
                        journal.record(
                            int(seed), value,
                            metrics_state=entry_state,
                            trace_state=(
                                shipment.trace_state
                                if collect_spans and shipment.trace_state
                                else None
                            ),
                        )
                    values.append(value)
                    note_seed_done(int(seed), value, elapsed_s=elapsed,
                                   shard=shard, worker_pid=pid)
            except BaseException:
                # Ctrl-C (or any other non-metric failure) while
                # collecting: drop the queued seeds, let running workers
                # finish their current seed, and leave the journal
                # consistent -- a --resume of the same sweep picks up
                # from here.
                pool.shutdown(wait=True, cancel_futures=True)
                _log.warning("sweep_interrupted", completed=len(values),
                             total=len(seeds))
                raise
    finally:
        # The workers have all detached (the pool context waited for
        # them), so the parent can safely release the segment even when
        # unwinding from an interrupt.  The local ndarray view must go
        # first: mmap refuses to close while buffers are exported.
        try:
            del slots
        except NameError:  # pragma: no cover - allocation failed early
            pass
        shm.close()
        shm.unlink()
    if first_failure is not None:
        # Every shard's partial metrics/spans are merged by now; only
        # then surface the failure, matching what the sequential path
        # leaves behind when a metric raises mid-sweep.
        shipment, pid = first_failure
        if shipment.error is not None:
            raise shipment.error
        raise AnalysisError(
            f"seed {shipment.seed} failed in worker "
            f"{pid}:\n{shipment.error_text}"
        )
    return values


def run_monte_carlo(
    metric: Callable[[int], float],
    seeds: Sequence[int],
    metric_name: str = "metric",
    jobs: Union[int, str] = 1,
    journal=None,
) -> MonteCarloResult:
    """Evaluate ``metric(seed)`` for every seed and summarise.

    ``jobs > 1`` shards the seeds over that many worker processes; the
    metric must then be picklable.  ``jobs="auto"`` uses one worker per
    available CPU, and explicit requests are clamped to the machine (see
    :func:`resolve_jobs`).  Values come back in seed order either way,
    so the result is independent of ``jobs``.

    ``journal`` (a :class:`~repro.reliability.checkpoint.SweepJournal`)
    turns on checkpoint/resume: every completed seed is journaled
    atomically with its per-seed metric state, seeds already journaled
    are skipped (their value and telemetry replayed,
    ``sweep_seeds_resumed_total`` counts them), and a sweep killed
    partway resumes to the same :class:`MonteCarloResult` an
    uninterrupted run produces.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    seeds = [int(s) for s in seeds]
    if journal is not None and len(set(seeds)) != len(seeds):
        raise ConfigurationError(
            "checkpoint/resume requires unique seeds (the journal is "
            "keyed by seed); drop the duplicates or the journal"
        )
    effective = resolve_jobs(jobs, len(seeds))
    if not isinstance(jobs, str) and jobs > 1 and effective == 1:
        # The caller explicitly asked for sharding, so hold the metric to
        # the documented picklability contract even though the clamp
        # sends us down the sequential path (spawning workers here would
        # oversubscribe the CPU and run slower than sequential).
        _require_picklable(metric)
        _log.info("sharding_skipped", requested=jobs,
                  cpus=_available_cpus(), seeds=len(seeds),
                  reason="not beneficial on this machine")
    note_phase("sweep", total=len(seeds), metric=metric_name,
               jobs=effective)
    with trace.span(
        "montecarlo", metric=metric_name, seeds=len(seeds), jobs=effective
    ):
        resumed = (
            _resume_from_journal(journal, seeds)
            if journal is not None else {}
        )
        pending = [s for s in seeds if s not in resumed]
        if not pending:
            run_values: list[float] = []
        elif effective == 1:
            run_values = _run_sequential(metric, pending, journal)
        else:
            run_values = _run_parallel(metric, pending, effective, journal)
        fresh = iter(run_values)
        values = [
            resumed[s] if s in resumed else next(fresh) for s in seeds
        ]
    _log.info("monte_carlo_done", metric=metric_name, n=len(seeds),
              jobs=effective, resumed=len(resumed))
    return MonteCarloResult(
        metric_name=metric_name, seeds=tuple(int(s) for s in seeds),
        values=tuple(values),
    )


def _experiment_registry() -> dict:
    # Imported lazily: repro.experiments sits above this module in the
    # layering and is heavy to import.
    from repro.experiments import (
        Experiment1Config,
        Experiment2Config,
        Experiment3Config,
        run_experiment1,
        run_experiment2,
        run_experiment3,
    )

    return {
        "exp1": (Experiment1Config, run_experiment1),
        "exp2": (Experiment2Config, run_experiment2),
        "exp3": (Experiment3Config, run_experiment3),
    }


def _resolve_experiment(experiment: str) -> tuple:
    runners = _experiment_registry()
    if experiment not in runners:
        raise ConfigurationError(
            f"unknown experiment {experiment!r}; choose from "
            f"{sorted(runners)}"
        )
    return runners[experiment]


def _experiment_metric(
    experiment: str, quick: bool, overrides: tuple, seed: int
) -> float:
    """Recovery accuracy of one seeded run (module-level: picklable)."""
    config_cls, runner = _resolve_experiment(experiment)
    config = (config_cls.quick(seed=seed) if quick
              else config_cls.paper(seed=seed))
    if overrides:
        config = dataclasses.replace(config, **dict(overrides))
    return runner(config).recovery_score.accuracy


def experiment_sweep(
    experiment: str,
    seeds: Sequence[int],
    quick: bool = True,
    config_overrides: Optional[dict] = None,
    jobs: Union[int, str] = 1,
    journal_path=None,
) -> MonteCarloResult:
    """Recovery-accuracy distribution of one experiment over seeds.

    ``experiment`` is ``"exp1"``, ``"exp2"`` or ``"exp3"``; ``quick``
    selects the shrunken configs; ``config_overrides`` are applied with
    :func:`dataclasses.replace`; ``jobs`` (an integer or ``"auto"``)
    shards the seeds over worker processes (``repro sweep --jobs`` on
    the command line).

    ``journal_path`` enables checkpoint/resume (``repro sweep
    --resume PATH``): completed seeds are journaled there and skipped
    on the next invocation.  The journal refuses to resume a sweep run
    with different parameters (experiment, quick flag, overrides or
    seed set).
    """
    _resolve_experiment(experiment)  # fail fast, before any worker spawns
    overrides = (
        tuple(sorted(config_overrides.items())) if config_overrides else ()
    )
    journal = None
    if journal_path is not None:
        from repro.reliability.checkpoint import SweepJournal

        journal = SweepJournal.load(journal_path, context={
            "experiment": experiment,
            "quick": bool(quick),
            "overrides": [list(pair) for pair in overrides],
            "seeds": [int(s) for s in seeds],
            "metric": "recovery_accuracy",
        })
    metric = partial(_experiment_metric, experiment, quick, overrides)
    return run_monte_carlo(
        metric, seeds, metric_name=f"{experiment} recovery accuracy",
        jobs=jobs, journal=journal,
    )
