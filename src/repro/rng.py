"""Deterministic random-number management.

Every stochastic component of the simulation (process variation, sensor
jitter, cloud allocation, tenant behaviour) draws from a
:class:`numpy.random.Generator` that is threaded through explicitly.  This
module provides the spawning discipline: a single experiment seed fans out
into independent, reproducible streams, one per subsystem, so adding a new
consumer of randomness never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "RngFactory", None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Accepts ``None`` (non-deterministic), an integer seed, an existing
    generator (returned unchanged), or an :class:`RngFactory` (a fresh
    child stream is spawned).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngFactory):
        return seed.spawn()
    return np.random.default_rng(seed)


class RngFactory:
    """Spawns independent named child streams from one root seed.

    Child streams are derived with :class:`numpy.random.SeedSequence` so
    they are statistically independent.  Requesting the same name twice
    returns two *different* streams (a counter is mixed in); use
    :meth:`stream` for a stable named stream instead.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._sequence = np.random.SeedSequence(seed)
        self._spawn_count = 0
        self._named: dict[str, np.random.Generator] = {}

    @property
    def seed_entropy(self) -> Iterable[int]:
        """The root entropy, useful for logging experiment provenance."""
        entropy = self._sequence.entropy
        if isinstance(entropy, int):
            return (entropy,)
        return tuple(entropy)

    def spawn(self) -> np.random.Generator:
        """Spawn a fresh, independent child generator."""
        child = self._sequence.spawn(1)[0]
        self._spawn_count += 1
        return np.random.default_rng(child)

    def stream(self, name: str) -> np.random.Generator:
        """Return a stable named stream, creating it on first use.

        The same (factory, name) pair always refers to the same generator
        object, so sequential draws from a named stream are reproducible
        regardless of what other streams exist.
        """
        if name not in self._named:
            seed = np.random.SeedSequence(
                list(self.seed_entropy) + [_stable_hash(name)]
            )
            self._named[name] = np.random.default_rng(seed)
        return self._named[name]


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash of a string (``hash()`` is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return value
