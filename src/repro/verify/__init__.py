"""Design-level pentimento vulnerability verification (Section 8.1).

The paper's user-mitigation discussion asks for exactly this tool:
"Verification tools could analyze the design or bitstream for sensitive
data residing on long routes.  The ability to provide reports about the
route lengths of the sensitive information would allow hardware security
verification engineers to better assess their data vulnerabilities
w.r.t. to a pentimento attack.  Providing a more precise measure of
protection (e.g., vulnerability metric) enables even stronger hardware
security verification."

Given a compiled bitstream, the names of its sensitive nets, and a
threat scenario (how long the data sits, how worn the device is, what
sensor the attacker fields), the analyzer predicts each net's imprint
magnitude, the attacker's per-measurement SNR, and the estimated hours
until a sequential attacker extracts the bit -- then grades the
exposure and recommends the applicable Section 8 mitigations.
"""

from repro.verify.analyzer import (
    ExposureGrade,
    NetExposure,
    ThreatScenario,
    VulnerabilityReport,
    analyze_bitstream,
    analyze_routes,
)
from repro.verify.report import render_vulnerability_report

__all__ = [
    "ExposureGrade",
    "NetExposure",
    "ThreatScenario",
    "VulnerabilityReport",
    "analyze_bitstream",
    "analyze_routes",
    "render_vulnerability_report",
]
