"""Text rendering of vulnerability reports."""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.verify.analyzer import VulnerabilityReport


def render_vulnerability_report(report: VulnerabilityReport) -> str:
    """A verification-signoff style report: per-net rows, verdicts,
    and applicable mitigations."""
    scenario = report.scenario
    header = (
        f"Pentimento vulnerability report: {report.design_name!r}\n"
        f"scenario: {scenario.residency_hours:.0f} h residency, "
        f"{scenario.device_age_hours:.0f} h device wear, "
        f"junction {scenario.junction_temperature_k - 273.15:.0f} C, "
        f"{scenario.measurement_passes} measurement pass(es)/hour"
    )
    rows = []
    for exposure in sorted(
        report.exposures, key=lambda e: -e.attacker_snr
    ):
        rows.append([
            exposure.net_name,
            f"{exposure.route_delay_ps:.0f}",
            exposure.switch_count,
            f"{exposure.expected_imprint_ps:.3f}",
            f"{exposure.attacker_snr:.1f}",
            ("%.0f" % exposure.hours_to_extraction
             if exposure.hours_to_extraction is not None else "-"),
            exposure.grade.value.upper(),
        ])
    table = render_table(
        ["net", "route (ps)", "switches", "imprint (ps)",
         "attacker SNR", "extract (h)", "grade"],
        rows,
    )
    grades = ", ".join(
        f"{count} {grade.value}"
        for grade, count in report.by_grade().items()
        if count
    )
    recommendations = "\n".join(
        f"  * {line}" for line in report.recommendations()
    )
    return (
        f"{header}\n\n{table}\n\nsummary: {grades}\n"
        f"recommendations:\n{recommendations}"
    )
