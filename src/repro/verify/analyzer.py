"""The vulnerability analyzer: from routes to exposure grades."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import AnalysisError, ConfigurationError
from repro.fabric.bitstream import Bitstream
from repro.fabric.routing import Route
from repro.physics.constants import (
    HIGH_POOL,
    REFERENCE_STRESS_HOURS,
    REFERENCE_TEMPERATURE_K,
    PS_PER_SWITCH_AT_REFERENCE,
    age_suppression,
)
from repro.physics.arrhenius import stress_acceleration
from repro.sensor.noise import CLOUD_NOISE, NoiseModel


@dataclass(frozen=True)
class ThreatScenario:
    """The conditions the analysis assumes for the attacker.

    Attributes:
        residency_hours: how long the sensitive value sits unchanged.
        device_age_hours: effective prior wear of the deployment fleet.
        junction_temperature_k: die temperature while the data resides.
        noise: the attacker's measurement environment.
        measurement_passes: averaging the attacker applies per hourly
            sample.
        detection_llr: log-likelihood-ratio the attacker needs per bit
            (ln(99) corresponds to ~1% error).
    """

    residency_hours: float = 200.0
    device_age_hours: float = 4000.0
    junction_temperature_k: float = REFERENCE_TEMPERATURE_K
    noise: NoiseModel = field(default_factory=lambda: CLOUD_NOISE)
    measurement_passes: int = 1
    detection_llr: float = math.log(99.0)

    def __post_init__(self) -> None:
        if self.residency_hours <= 0.0:
            raise ConfigurationError("residency_hours must be positive")
        if self.device_age_hours < 0.0:
            raise ConfigurationError("device_age_hours must be >= 0")
        if self.measurement_passes <= 0:
            raise ConfigurationError("measurement_passes must be positive")

    @classmethod
    def aws_f1_default(cls) -> "ThreatScenario":
        """The paper's cloud setting: aged F1 card, 200-hour residency."""
        return cls()

    @classmethod
    def fresh_device(cls) -> "ThreatScenario":
        """A worst-case (new silicon) deployment."""
        return cls(device_age_hours=0.0)


class ExposureGrade(enum.Enum):
    """Verdict buckets for one sensitive net."""

    LOW = "low"
    MODERATE = "moderate"
    HIGH = "high"
    CRITICAL = "critical"


#: Attacker SNR (imprint / per-sample noise) thresholds per grade.
_GRADE_THRESHOLDS = ((8.0, ExposureGrade.CRITICAL),
                     (3.0, ExposureGrade.HIGH),
                     (1.0, ExposureGrade.MODERATE))


@dataclass(frozen=True)
class NetExposure:
    """Predicted exposure of one sensitive net."""

    net_name: str
    route_delay_ps: float
    switch_count: int
    expected_imprint_ps: float
    attacker_snr: float
    hours_to_extraction: Optional[float]
    grade: ExposureGrade

    @property
    def extractable(self) -> bool:
        """Whether the attacker reaches a decision at all."""
        return self.hours_to_extraction is not None


@dataclass(frozen=True)
class VulnerabilityReport:
    """Exposure of every analysed net plus design-level verdicts."""

    design_name: str
    scenario: ThreatScenario
    exposures: tuple[NetExposure, ...]

    def worst(self) -> NetExposure:
        """The most exposed net."""
        return max(self.exposures, key=lambda e: e.attacker_snr)

    def by_grade(self) -> dict[ExposureGrade, int]:
        """Count of nets per exposure grade."""
        counts = {grade: 0 for grade in ExposureGrade}
        for exposure in self.exposures:
            counts[exposure.grade] += 1
        return counts

    def recommendations(self) -> list[str]:
        """Section 8.1 mitigations applicable to the findings."""
        recommendations = []
        counts = self.by_grade()
        flagged = counts[ExposureGrade.HIGH] + counts[ExposureGrade.CRITICAL]
        if flagged:
            recommendations.append(
                f"{flagged} net(s) are extractable in this scenario: "
                f"invert or shuffle the data periodically "
                f"(repro.mitigations schedules), or rotate the secret."
            )
            long_routes = [
                e for e in self.exposures
                if e.grade in (ExposureGrade.HIGH, ExposureGrade.CRITICAL)
                and e.route_delay_ps > 1500.0
            ]
            if long_routes:
                recommendations.append(
                    f"{len(long_routes)} flagged net(s) exceed 1500 ps: "
                    f"constrain placement so sensitive routes stay short "
                    f"('shorter routes are a more secure design pattern')."
                )
        if counts[ExposureGrade.MODERATE]:
            recommendations.append(
                f"{counts[ExposureGrade.MODERATE]} net(s) are marginal: "
                f"a longer residency or a patient attacker flips them to "
                f"extractable; prefer defence in depth."
            )
        if not recommendations:
            recommendations.append(
                "No net exceeds the attacker's noise floor in this "
                "scenario; re-run against ThreatScenario.fresh_device() "
                "for the conservative bound."
            )
        return recommendations


def analyze_routes(
    routes: Sequence[Route],
    scenario: Optional[ThreatScenario] = None,
    design_name: str = "design",
) -> VulnerabilityReport:
    """Grade a set of sensitive routes under a threat scenario."""
    if not routes:
        raise AnalysisError("no routes to analyse")
    scenario = scenario or ThreatScenario.aws_f1_default()
    exposures = tuple(_expose(route, scenario) for route in routes)
    return VulnerabilityReport(
        design_name=design_name, scenario=scenario, exposures=exposures
    )


def analyze_bitstream(
    bitstream: Bitstream,
    sensitive_nets: Optional[Sequence[str]] = None,
    scenario: Optional[ThreatScenario] = None,
) -> VulnerabilityReport:
    """Grade a compiled design's sensitive nets.

    With ``sensitive_nets=None`` every statically-driven routed net is
    analysed (constants are where Type A secrets live).
    """
    skeleton = bitstream.skeleton()
    if sensitive_nets is None:
        names = list(skeleton.static_net_names)
    else:
        names = list(sensitive_nets)
    if not names:
        raise AnalysisError(
            f"design {bitstream.name!r} has no nets to analyse"
        )
    routes = [skeleton.route_for(name) for name in names]
    return analyze_routes(
        routes, scenario=scenario, design_name=bitstream.name
    )


def _expose(route: Route, scenario: ThreatScenario) -> NetExposure:
    """Predict one route's imprint, SNR and time-to-extraction."""
    acceleration = stress_acceleration(
        HIGH_POOL, scenario.junction_temperature_k
    )
    effective_hours = scenario.residency_hours * acceleration
    amplitude = route.switch_count * PS_PER_SWITCH_AT_REFERENCE
    imprint = (
        amplitude
        * age_suppression(scenario.device_age_hours)
        * (effective_hours / REFERENCE_STRESS_HOURS)
        ** HIGH_POOL.stress_exponent
    )
    sample_sigma = _per_measurement_sigma(scenario)
    snr = imprint / sample_sigma if sample_sigma > 0.0 else float("inf")
    hours = _hours_to_extraction(imprint, sample_sigma, scenario)
    grade = ExposureGrade.LOW
    for threshold, candidate in _GRADE_THRESHOLDS:
        if snr >= threshold:
            grade = candidate
            break
    return NetExposure(
        net_name=route.name,
        route_delay_ps=route.nominal_delay_ps,
        switch_count=route.switch_count,
        expected_imprint_ps=imprint,
        attacker_snr=snr,
        hours_to_extraction=hours,
        grade=grade,
    )


def _per_measurement_sigma(scenario: ThreatScenario) -> float:
    """Delta-ps noise of one averaged hourly sample.

    One measurement averages 10 traces x 16 samples per polarity; the
    jitter contribution scales accordingly, the slow polarity offset
    does not average away within a pass.
    """
    per_polarity = scenario.noise.jitter_ps / math.sqrt(160.0)
    jitter = per_polarity * math.sqrt(2.0)
    sigma_one_pass = math.hypot(
        jitter, scenario.noise.polarity_offset_sigma_ps * math.sqrt(2.0)
    )
    # Quantisation/metastability floor observed empirically.
    sigma_one_pass = max(sigma_one_pass, 0.15)
    return sigma_one_pass / math.sqrt(scenario.measurement_passes)


def _hours_to_extraction(
    imprint: float, sigma: float, scenario: ThreatScenario
) -> Optional[float]:
    """Hours of hourly measurement until the SPRT's LLR clears.

    Models the accumulated drift level at hour t as
    ``imprint * (t / residency)**n``; each hourly sample contributes
    ``2 * level(t)**2 / (2 sigma^2)`` of expected log-likelihood ratio.
    Returns None when the target is not reached within 4x the residency
    (the imprint saturates; waiting longer stops paying).
    """
    if imprint <= 0.0 or sigma <= 0.0:
        return None
    n = HIGH_POOL.stress_exponent
    accumulated = 0.0
    horizon = int(4 * scenario.residency_hours)
    for hour in range(1, horizon + 1):
        level = imprint * min(
            (hour / scenario.residency_hours) ** n, 1.0
        )
        accumulated += level * level / (sigma * sigma)
        if accumulated >= scenario.detection_llr:
            return float(hour)
    return None
