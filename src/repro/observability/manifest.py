"""Run manifests: self-describing provenance for every experiment run.

A manifest captures everything needed to interpret -- and diff -- an
archived result months later: the package version, interpreter,
platform, seed, full config, the command line, the span tree the run
produced and a snapshot of its metrics.  :func:`build_manifest` is
called by :func:`repro.persistence.save_experiment` so every archive
written at schema version 2 embeds one under its ``"manifest"`` key.

Two archives from different machines or code versions can then be
compared field-by-field (:func:`diff_manifests`) to explain why their
numbers diverge.
"""

from __future__ import annotations

import dataclasses
import platform
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observability import metrics as _metrics
from repro.observability import trace as _trace

__all__ = [
    "RunManifest",
    "build_manifest",
    "diff_manifests",
    "git_state",
    "resolved_kernels",
]

#: Manifest payload format, independent of the archive schema version.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class RunManifest:
    """Provenance record of one pipeline run."""

    run_id: str
    created_unix: float
    repro_version: str
    python_version: str
    platform: str
    argv: tuple[str, ...]
    seed: Optional[int] = None
    config: Optional[dict] = None
    git_revision: Optional[str] = None
    git_dirty: Optional[bool] = None
    kernels: dict = field(default_factory=dict)
    spans: tuple = ()
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "created_unix": self.created_unix,
            "repro_version": self.repro_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "argv": list(self.argv),
            "seed": self.seed,
            "config": self.config,
            "git_revision": self.git_revision,
            "git_dirty": self.git_dirty,
            "kernels": dict(self.kernels),
            "spans": list(self.spans),
            "metrics": dict(self.metrics),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        return cls(
            run_id=payload.get("run_id", ""),
            created_unix=float(payload.get("created_unix", 0.0)),
            repro_version=payload.get("repro_version", ""),
            python_version=payload.get("python_version", ""),
            platform=payload.get("platform", ""),
            argv=tuple(payload.get("argv", ())),
            seed=payload.get("seed"),
            config=payload.get("config"),
            git_revision=payload.get("git_revision"),
            git_dirty=payload.get("git_dirty"),
            kernels=dict(payload.get("kernels", {})),
            spans=tuple(payload.get("spans", ())),
            metrics=dict(payload.get("metrics", {})),
            extra=dict(payload.get("extra", {})),
        )


#: ``git_state()`` result memoised per process -- the revision cannot
#: change mid-run, and a subprocess per manifest would dominate quick
#: experiments.  ``None`` means "not asked yet".
_GIT_STATE: Optional[tuple[Optional[str], Optional[bool]]] = None


def git_state() -> tuple[Optional[str], Optional[bool]]:
    """``(revision, dirty)`` of the working tree, or ``(None, None)``.

    Answers come from ``git rev-parse`` / ``git status --porcelain``;
    outside a checkout (an installed wheel, a bare archive) or without
    a ``git`` binary both fields are ``None``.  Cached for the process
    lifetime.
    """
    global _GIT_STATE
    if _GIT_STATE is not None:
        return _GIT_STATE
    revision: Optional[str] = None
    dirty: Optional[bool] = None
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
        )
        if probe.returncode == 0:
            revision = probe.stdout.strip()[:12] or None
        if revision is not None:
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                capture_output=True, text=True, timeout=5.0,
            )
            if status.returncode == 0:
                dirty = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        revision, dirty = None, None
    _GIT_STATE = (revision, dirty)
    return _GIT_STATE


def resolved_kernels() -> dict:
    """The kernel knobs this process actually resolved to.

    Records what ``REPRO_CAPTURE_KERNEL`` / ``REPRO_AGING_KERNEL`` (or
    their in-process setters) produced, so an archived number can be
    attributed to the batched vs reference capture path and the array
    vs scalar aging engine.
    """
    from repro.physics.pool_array import get_aging_kernel
    from repro.sensor.tdc import get_capture_kernel

    return {
        "capture": get_capture_kernel(),
        "aging": get_aging_kernel(),
    }


def _config_as_dict(config: Any) -> Optional[dict]:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    return {"repr": repr(config)}


def build_manifest(
    config: Any = None,
    seed: Optional[int] = None,
    argv: Optional[list] = None,
    extra: Optional[dict] = None,
    include_spans: bool = True,
    include_metrics: bool = True,
) -> RunManifest:
    """Snapshot the current process into a :class:`RunManifest`.

    ``config`` may be a dataclass (``asdict`` is applied), a dict, or
    ``None``.  When ``seed`` is omitted it is taken from the config's
    ``seed`` field if there is one.  Span and metric snapshots reflect
    whatever the run recorded up to this call.
    """
    config_dict = _config_as_dict(config)
    if seed is None and config_dict is not None:
        seed = config_dict.get("seed")
    from repro import __version__

    revision, dirty = git_state()
    return RunManifest(
        run_id=uuid.uuid4().hex[:12],
        created_unix=time.time(),
        repro_version=__version__,
        python_version=platform.python_version(),
        platform=platform.platform(),
        argv=tuple(argv if argv is not None else sys.argv),
        seed=seed,
        config=config_dict,
        git_revision=revision,
        git_dirty=dirty,
        kernels=resolved_kernels(),
        spans=tuple(_trace.tree_as_dicts()) if include_spans else (),
        metrics=(
            _metrics.get_registry().snapshot() if include_metrics else {}
        ),
        extra=dict(extra or {}),
    )


def diff_manifests(a: dict, b: dict) -> dict:
    """Field-level differences between two manifest dicts.

    Returns ``{field: (a_value, b_value)}`` over the identity fields
    (version, interpreter, platform, seed) and any config keys whose
    values differ -- the first place to look when two archives of the
    same experiment disagree.
    """
    diffs: dict = {}
    for key in ("repro_version", "python_version", "platform", "seed",
                "git_revision", "git_dirty"):
        if a.get(key) != b.get(key):
            diffs[key] = (a.get(key), b.get(key))
    for group in ("config", "kernels"):
        group_a = a.get(group) or {}
        group_b = b.get(group) or {}
        for key in sorted(set(group_a) | set(group_b)):
            if group_a.get(key) != group_b.get(key):
                diffs[f"{group}.{key}"] = (group_a.get(key),
                                           group_b.get(key))
    return diffs
