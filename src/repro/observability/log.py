"""Structured logging: key=value or JSON event lines on stderr.

The pipeline's interesting moments (image loads, calibration outcomes,
phase boundaries, DRC rejections) are emitted as *events with fields*
rather than prose, so multi-hundred-hour campaign logs stay greppable
and machine-parseable.

Logging is **off by default**; the ``REPRO_LOG`` environment variable
switches it on:

* ``REPRO_LOG=kv`` (or ``1``) -- one ``key=value`` line per event;
* ``REPRO_LOG=json`` -- one JSON object per line;
* unset / ``0`` / ``off`` -- disabled (the no-op fast path: a single
  predicate check per call).

Usage::

    from repro.observability.log import get_logger

    log = get_logger("cloud.instance")
    log.info("image_loaded", design="measure", instance=7)
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional, TextIO

__all__ = ["StructuredLogger", "get_logger", "configure", "mode"]

_VALID_MODES = ("kv", "json")


def _mode_from_env() -> Optional[str]:
    raw = os.environ.get("REPRO_LOG", "").strip().lower()
    if raw in ("", "0", "off", "false"):
        return None
    if raw in ("1", "true", "kv"):
        return "kv"
    if raw == "json":
        return "json"
    return "kv"  # any other truthy value: default to the readable form


_mode: Optional[str] = _mode_from_env()
_stream: TextIO = sys.stderr


def configure(
    mode: Optional[str] = None, stream: Optional[TextIO] = None
) -> None:
    """Override the environment switch (tests, embedding callers).

    ``mode`` is ``"kv"``, ``"json"`` or ``None`` (disabled).
    """
    global _mode, _stream
    if mode is not None and mode not in _VALID_MODES:
        raise ValueError(f"log mode must be one of {_VALID_MODES} or None")
    _mode = mode
    if stream is not None:
        _stream = stream


def mode() -> Optional[str]:
    """The active log mode (``None`` when disabled)."""
    return _mode


def _format_kv(value) -> str:
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return json.dumps(text)
    return text


class StructuredLogger:
    """A named emitter of structured events."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one event (no-op unless ``REPRO_LOG`` enables a mode)."""
        if _mode is None:
            return
        record = {
            "ts": round(time.time(), 3),
            "level": level,
            "logger": self.name,
            "event": event,
            **fields,
        }
        if _mode == "json":
            line = json.dumps(record)
        else:
            line = " ".join(f"{k}={_format_kv(v)}" for k, v in record.items())
        print(line, file=_stream)

    def debug(self, event: str, **fields) -> None:
        """Emit at debug level."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        """Emit at info level."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        """Emit at warning level."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        """Emit at error level."""
        self.log("error", event, **fields)


_loggers: dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """Get or create the logger ``name`` (cached; loggers are stateless)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = StructuredLogger(name)
    return logger
