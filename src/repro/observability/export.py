"""Exporters: metrics and spans as JSON or Prometheus text.

Two consumers matter:

* a human (or CI job) diffing runs -- :func:`write_metrics_json` writes
  one JSON document combining the metrics snapshot, the span tree and
  an optional manifest;
* a scrape pipeline -- :func:`to_prometheus_text` renders the registry
  in the Prometheus text exposition format (counters and gauges as
  samples, histograms as ``_count``/``_sum`` plus ``quantile``-labelled
  summary samples).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.observability import trace as _trace
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = [
    "metrics_to_dict",
    "write_metrics_json",
    "write_spans_jsonl",
    "to_prometheus_text",
    "write_prometheus_text",
]

PathLike = Union[str, Path]


def metrics_to_dict(
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[dict] = None,
    include_spans: bool = True,
) -> dict:
    """The combined JSON export document."""
    registry = registry if registry is not None else get_registry()
    payload = {"metrics": registry.snapshot()}
    if include_spans:
        payload["spans"] = _trace.tree_as_dicts()
    if manifest is not None:
        payload["manifest"] = manifest
    return payload


def write_metrics_json(
    path: PathLike,
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[dict] = None,
) -> Path:
    """Write the JSON export to ``path``; returns the resolved path."""
    target = Path(path)
    target.write_text(
        json.dumps(metrics_to_dict(registry, manifest=manifest), indent=1)
    )
    return target


def write_spans_jsonl(path: PathLike) -> Path:
    """Write the span forest as JSON Lines: one root span tree per line.

    The line-per-root layout streams and greps well for sweeps with
    many seeds; each line is a :meth:`repro.observability.trace.Span.
    to_dict` document (wall-clock start included), so a consumer can
    rebuild the forest with ``Span.from_dict`` per line.
    """
    target = Path(path)
    with target.open("w") as handle:
        for payload in _trace.tree_as_dicts():
            handle.write(json.dumps(payload) + "\n")
    return target


def _sanitise(name: str) -> str:
    """A legal exposition-format metric name.

    Metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``: every other
    character becomes ``_`` and a leading digit gets a ``_`` prefix.
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_help(text: str) -> str:
    """HELP text escaping per the exposition format: ``\\`` and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus_text(
    registry: Optional[MetricsRegistry] = None,
    series=None,
) -> str:
    """The registry in the Prometheus text exposition format.

    Every metric family gets both a ``# HELP`` line (escaped; the
    metric name stands in when no help string was registered -- a
    scraper-side convention that keeps the family block complete) and a
    ``# TYPE`` line.  Histograms export as summaries: ``quantile``
    -labelled samples plus the exact ``_sum``/``_count`` pair.

    ``series`` (a fleet run's
    :class:`~repro.observability.timeseries.FlightRecorder` or its
    ``to_dict()`` payload) adds two label-free gauges per sim-time
    series: the last-sample value under the sanitised series name, and
    the simulated hour it was taken at under ``<name>_simhours``.
    """
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []

    def _head(metric: str, help_text: str, kind: str) -> None:
        lines.append(
            f"# HELP {metric} {_escape_help(help_text or metric)}"
        )
        lines.append(f"# TYPE {metric} {kind}")

    for name, counter in sorted(registry.counters.items()):
        metric = _sanitise(name)
        _head(metric, counter.help, "counter")
        lines.append(f"{metric} {counter.value}")
    for name, gauge in sorted(registry.gauges.items()):
        metric = _sanitise(name)
        _head(metric, gauge.help, "gauge")
        lines.append(f"{metric} {gauge.value}")
    if series is not None:
        payload = (series.to_dict()
                   if hasattr(series, "to_dict") else series)
        for name, data in sorted(payload.get("series", {}).items()):
            last = data.get("last")
            if last is None:
                continue
            metric = _sanitise(name)
            _head(metric, data.get("help", ""), "gauge")
            lines.append(f"{metric} {last[1]}")
            _head(f"{metric}_simhours",
                  f"simulated hour of the last {name} sample", "gauge")
            lines.append(f"{metric}_simhours {last[0]}")
    for name, hist in sorted(registry.histograms.items()):
        metric = _sanitise(name)
        _head(metric, hist.help, "summary")
        for q in (0.5, 0.95, 0.99):
            lines.append(
                f'{metric}{{quantile="{q}"}} {hist.percentile(q * 100.0)}'
            )
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(
    path: PathLike, registry: Optional[MetricsRegistry] = None
) -> Path:
    """Write the Prometheus text export to ``path``."""
    target = Path(path)
    target.write_text(to_prometheus_text(registry))
    return target
