"""Chrome Trace Event Format export of the span forest.

Any traced run -- including a sharded Monte Carlo sweep whose worker
spans were merged back into the parent (see
:func:`repro.observability.trace.merge_state`) -- can be exported as a
``trace_events`` JSON document and opened in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* every span becomes a complete event (``ph="X"``) with microsecond
  ``ts``/``dur``, placed on the track of the process that recorded it
  (worker spans carry a ``worker_pid`` attribute and land on their
  worker's track);
* each top-level span within a process gets its own thread track
  (``tid``), so the phases of an experiment and the seeds of a sweep
  render as parallel lanes;
* the hot-kernel throughput counters (``capture_words_total``,
  ``aging_segment_updates_total``) and the reliability counters
  (``faults_injected_total``, ``retries_total``) become counter events
  (``ph="C"``) so the words/segments ramp -- and the fault storm's
  cost -- is visible alongside the spans;
* the zero-duration reliability markers (``fault.inject`` spans from
  :func:`repro.reliability.faults.maybe_inject`, ``retry.wait`` spans
  from :func:`repro.reliability.retry.note_retry`) become instant
  events (``ph="i"``, thread-scoped) so injections and backoffs render
  as pins on the lane where they struck rather than invisible
  zero-width slices;
* a fleet run's :class:`~repro.observability.timeseries.FlightRecorder`
  series land in a synthetic **sim-clock** process
  (:data:`SIM_CLOCK_PID`): each retained sample becomes a counter
  event with ``ts = sim_hours * SIM_HOUR_US``, so pool occupancy,
  aging debt and recovery yield render as ramps on a simulated-time
  axis alongside (but clearly separated from) the wall-clock tracks.

The format reference is the Trace Event Format spec; only the
long-stable ``X``/``C``/``M``/``i`` phases are emitted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.observability import trace
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = [
    "INSTANT_SPANS",
    "SIM_CLOCK_PID",
    "SIM_HOUR_US",
    "THROUGHPUT_COUNTERS",
    "to_trace_events",
    "write_trace_events",
]

PathLike = Union[str, Path]

#: Synthetic process id hosting the sim-clock counter tracks (chosen
#: outside any plausible real pid range).
SIM_CLOCK_PID = 999_983

#: Trace microseconds per simulated hour: 1 sim-hour renders as 1 ms,
#: so a two-week horizon spans a comfortable ~0.34 s of trace time.
SIM_HOUR_US = 1000.0

#: Counters exported as Chrome counter tracks when present.
THROUGHPUT_COUNTERS = (
    "capture_words_total",
    "aging_segment_updates_total",
    "faults_injected_total",
    "retries_total",
)

#: Zero-duration marker spans rendered as instant events, not slices.
INSTANT_SPANS = frozenset({"fault.inject", "retry.wait", "fleet.fault"})


def _span_pid(sp: trace.Span, default_pid: int) -> int:
    pid = sp.attrs.get("worker_pid")
    return int(pid) if pid is not None else default_pid


def _jsonable_attrs(attrs: dict) -> dict:
    return {
        key: (value if isinstance(value, (int, float, str, bool))
              or value is None else repr(value))
        for key, value in attrs.items()
    }


def _sim_clock_events(sim_series) -> list[dict]:
    """Counter events for every retained flight-recorder sample.

    ``sim_series`` is a FlightRecorder or its ``to_dict()`` payload;
    samples land in the :data:`SIM_CLOCK_PID` process with timestamps
    on the simulated clock (``SIM_HOUR_US`` microseconds per
    sim-hour).
    """
    payload = (sim_series.to_dict()
               if hasattr(sim_series, "to_dict") else sim_series)
    events: list[dict] = []
    for name, series in sorted(payload.get("series", {}).items()):
        for t, value in series.get("points", []):
            events.append({
                "name": name,
                "ph": "C",
                "ts": t * SIM_HOUR_US,
                "pid": SIM_CLOCK_PID,
                "tid": 0,
                "args": {"value": value},
            })
    return events


def to_trace_events(
    spans: Optional[Sequence[trace.Span]] = None,
    registry: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
    sim_series=None,
) -> dict:
    """The span forest as a Trace Event Format document (a dict).

    ``spans`` defaults to the collected forest, ``registry`` to the
    process-global metrics registry (pass ``None``-like empty registry
    to skip counter events).  Timestamps are microseconds relative to
    the earliest span start, so the trace opens at t=0.  With
    ``sim_series`` (a fleet run's
    :class:`~repro.observability.timeseries.FlightRecorder` or its
    ``to_dict()`` payload) the document gains the sim-clock track
    group.
    """
    forest = trace.roots() if spans is None else list(spans)
    registry = registry if registry is not None else get_registry()
    own_pid = os.getpid()

    starts = [root.start_unix() for root in forest]
    t0 = min(starts) if starts else 0.0

    events: list[dict] = []
    seen_pids: set[int] = set()
    next_tid: dict[int, int] = {}

    def allocate_tid(pid: int) -> int:
        tid = next_tid.get(pid, 1)
        next_tid[pid] = tid + 1
        return tid

    def emit(sp: trace.Span, pid: int, tid: int) -> None:
        if sp.name in INSTANT_SPANS:
            events.append({
                "name": sp.name,
                "ph": "i",
                "s": "t",
                "ts": round((sp.start_unix() - t0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "cat": sp.name.split(".", 1)[0],
                "args": _jsonable_attrs(sp.attrs),
            })
            return
        events.append({
            "name": sp.name,
            "ph": "X",
            "ts": round((sp.start_unix() - t0) * 1e6, 3),
            "dur": round((sp.duration_s or 0.0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "cat": sp.name.split(".", 1)[0],
            "args": _jsonable_attrs(sp.attrs),
        })
        for child in sp.children:
            child_pid = _span_pid(child, pid)
            # A merged worker subtree opens its own track in its
            # worker's process rather than riding the parent's lane.
            child_tid = tid if child_pid == pid else allocate_tid(child_pid)
            emit(child, child_pid, child_tid)

    for root in forest:
        pid = _span_pid(root, own_pid)
        seen_pids.add(pid)
        emit(root, pid, allocate_tid(pid))

    # Worker spans may sit below a parent root; their pids surface
    # through the recursive emit above, so collect them for metadata.
    for event in events:
        seen_pids.add(event["pid"])

    sim_events: list[dict] = []
    if sim_series is not None:
        sim_events = _sim_clock_events(sim_series)
        if sim_events:
            seen_pids.add(SIM_CLOCK_PID)

    metadata: list[dict] = []
    for pid in sorted(seen_pids):
        if pid == SIM_CLOCK_PID:
            label = f"{process_name} sim-clock (1 sim-hour = 1 ms)"
        elif pid == own_pid:
            label = process_name
        else:
            label = f"{process_name} worker {pid}"
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })

    counters: list[dict] = []
    if events:
        end_ts = max(event["ts"] + event.get("dur", 0.0) for event in events)
        for name in THROUGHPUT_COUNTERS:
            counter = registry.counters.get(name)
            if counter is None or counter.value == 0:
                continue
            for ts, value in ((0.0, 0.0), (end_ts, counter.value)):
                counters.append({
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": own_pid,
                    "tid": 0,
                    "args": {"value": value},
                })

    document = {
        "traceEvents": metadata + events + counters + sim_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.observability.timeline",
            "origin_unix": t0,
        },
    }
    if sim_events:
        document["otherData"]["sim_hour_us"] = SIM_HOUR_US
    return document


def write_trace_events(
    path: PathLike,
    spans: Optional[Sequence[trace.Span]] = None,
    registry: Optional[MetricsRegistry] = None,
    sim_series=None,
) -> Path:
    """Write the Trace Event JSON to ``path``; returns the path.

    Open the file in Perfetto or ``chrome://tracing`` to inspect the
    run's timeline.
    """
    target = Path(path)
    target.write_text(json.dumps(
        to_trace_events(spans, registry, sim_series=sim_series), indent=1
    ))
    return target
