"""Chrome Trace Event Format export of the span forest.

Any traced run -- including a sharded Monte Carlo sweep whose worker
spans were merged back into the parent (see
:func:`repro.observability.trace.merge_state`) -- can be exported as a
``trace_events`` JSON document and opened in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* every span becomes a complete event (``ph="X"``) with microsecond
  ``ts``/``dur``, placed on the track of the process that recorded it
  (worker spans carry a ``worker_pid`` attribute and land on their
  worker's track);
* each top-level span within a process gets its own thread track
  (``tid``), so the phases of an experiment and the seeds of a sweep
  render as parallel lanes;
* the hot-kernel throughput counters (``capture_words_total``,
  ``aging_segment_updates_total``) and the reliability counters
  (``faults_injected_total``, ``retries_total``) become counter events
  (``ph="C"``) so the words/segments ramp -- and the fault storm's
  cost -- is visible alongside the spans;
* the zero-duration reliability markers (``fault.inject`` spans from
  :func:`repro.reliability.faults.maybe_inject`, ``retry.wait`` spans
  from :func:`repro.reliability.retry.note_retry`) become instant
  events (``ph="i"``, thread-scoped) so injections and backoffs render
  as pins on the lane where they struck rather than invisible
  zero-width slices.

The format reference is the Trace Event Format spec; only the
long-stable ``X``/``C``/``M``/``i`` phases are emitted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.observability import trace
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = [
    "INSTANT_SPANS",
    "THROUGHPUT_COUNTERS",
    "to_trace_events",
    "write_trace_events",
]

PathLike = Union[str, Path]

#: Counters exported as Chrome counter tracks when present.
THROUGHPUT_COUNTERS = (
    "capture_words_total",
    "aging_segment_updates_total",
    "faults_injected_total",
    "retries_total",
)

#: Zero-duration marker spans rendered as instant events, not slices.
INSTANT_SPANS = frozenset({"fault.inject", "retry.wait"})


def _span_pid(sp: trace.Span, default_pid: int) -> int:
    pid = sp.attrs.get("worker_pid")
    return int(pid) if pid is not None else default_pid


def _jsonable_attrs(attrs: dict) -> dict:
    return {
        key: (value if isinstance(value, (int, float, str, bool))
              or value is None else repr(value))
        for key, value in attrs.items()
    }


def to_trace_events(
    spans: Optional[Sequence[trace.Span]] = None,
    registry: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
) -> dict:
    """The span forest as a Trace Event Format document (a dict).

    ``spans`` defaults to the collected forest, ``registry`` to the
    process-global metrics registry (pass ``None``-like empty registry
    to skip counter events).  Timestamps are microseconds relative to
    the earliest span start, so the trace opens at t=0.
    """
    forest = trace.roots() if spans is None else list(spans)
    registry = registry if registry is not None else get_registry()
    own_pid = os.getpid()

    starts = [root.start_unix() for root in forest]
    t0 = min(starts) if starts else 0.0

    events: list[dict] = []
    seen_pids: set[int] = set()
    next_tid: dict[int, int] = {}

    def allocate_tid(pid: int) -> int:
        tid = next_tid.get(pid, 1)
        next_tid[pid] = tid + 1
        return tid

    def emit(sp: trace.Span, pid: int, tid: int) -> None:
        if sp.name in INSTANT_SPANS:
            events.append({
                "name": sp.name,
                "ph": "i",
                "s": "t",
                "ts": round((sp.start_unix() - t0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "cat": sp.name.split(".", 1)[0],
                "args": _jsonable_attrs(sp.attrs),
            })
            return
        events.append({
            "name": sp.name,
            "ph": "X",
            "ts": round((sp.start_unix() - t0) * 1e6, 3),
            "dur": round((sp.duration_s or 0.0) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "cat": sp.name.split(".", 1)[0],
            "args": _jsonable_attrs(sp.attrs),
        })
        for child in sp.children:
            child_pid = _span_pid(child, pid)
            # A merged worker subtree opens its own track in its
            # worker's process rather than riding the parent's lane.
            child_tid = tid if child_pid == pid else allocate_tid(child_pid)
            emit(child, child_pid, child_tid)

    for root in forest:
        pid = _span_pid(root, own_pid)
        seen_pids.add(pid)
        emit(root, pid, allocate_tid(pid))

    # Worker spans may sit below a parent root; their pids surface
    # through the recursive emit above, so collect them for metadata.
    for event in events:
        seen_pids.add(event["pid"])

    metadata: list[dict] = []
    for pid in sorted(seen_pids):
        label = (process_name if pid == own_pid
                 else f"{process_name} worker {pid}")
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })

    counters: list[dict] = []
    if events:
        end_ts = max(event["ts"] + event.get("dur", 0.0) for event in events)
        for name in THROUGHPUT_COUNTERS:
            counter = registry.counters.get(name)
            if counter is None or counter.value == 0:
                continue
            for ts, value in ((0.0, 0.0), (end_ts, counter.value)):
                counters.append({
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": own_pid,
                    "tid": 0,
                    "args": {"value": value},
                })

    return {
        "traceEvents": metadata + events + counters,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.observability.timeline",
            "origin_unix": t0,
        },
    }


def write_trace_events(
    path: PathLike,
    spans: Optional[Sequence[trace.Span]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write the Trace Event JSON to ``path``; returns the path.

    Open the file in Perfetto or ``chrome://tracing`` to inspect the
    run's timeline.
    """
    target = Path(path)
    target.write_text(json.dumps(to_trace_events(spans, registry), indent=1))
    return target
