"""Wall-time attribution: roll a span forest up into a profile.

A traced run yields a span tree mirroring the pipeline (experiment ->
phase -> capture).  This module answers "where did the time go?" by
aggregating that tree per span name: how often each stage ran, its
total (inclusive) time, and its *self* time -- the part not accounted
for by child spans -- so a hot kernel shows up as self time in the
leaf stage that calls it rather than being smeared across every
ancestor.

The ``repro profile exp1`` CLI command runs an experiment under
tracing and prints this table, replacing hand-measured attribution
("~84% of exp1 in sample_word") with a first-class report.  The same
rollup works on spans merged from worker processes, so a sharded
sweep profiles the same way a sequential run does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.observability import trace

__all__ = [
    "AttributionRow",
    "attribute_spans",
    "build_report",
    "render_report",
]


@dataclass(frozen=True)
class AttributionRow:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_s(self) -> float:
        """Mean inclusive duration per occurrence."""
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "self_s": round(self.self_s, 6),
            "mean_s": round(self.mean_s, 6),
        }


def attribute_spans(
    spans: Optional[Sequence[trace.Span]] = None,
) -> list[AttributionRow]:
    """Aggregate a span forest into per-name attribution rows.

    For each span, *self* time is its duration minus the sum of its
    children's durations (clamped at zero against clock jitter); rows
    come back sorted by self time, descending -- the profile's "where
    the time actually goes" ordering.
    """
    forest = trace.roots() if spans is None else spans
    totals: dict[str, list] = {}
    for root in forest:
        for sp in root.walk():
            duration = sp.duration_s or 0.0
            children = sum(c.duration_s or 0.0 for c in sp.children)
            bucket = totals.setdefault(sp.name, [0, 0.0, 0.0])
            bucket[0] += 1
            bucket[1] += duration
            bucket[2] += max(duration - children, 0.0)
    rows = [
        AttributionRow(name=name, count=count, total_s=total, self_s=self_s)
        for name, (count, total, self_s) in totals.items()
    ]
    rows.sort(key=lambda row: row.self_s, reverse=True)
    return rows


def build_report(
    spans: Optional[Sequence[trace.Span]] = None,
    wall_s: Optional[float] = None,
) -> dict:
    """The full attribution report as one JSON-ready document.

    ``wall_s`` is the externally measured wall time of the profiled
    run; ``coverage`` is the fraction of it the root spans explain
    (the `repro profile` acceptance bar is >= 0.9).  Self times
    partition the root total by construction, so the rows' self-time
    column sums back to the inclusive total.
    """
    forest = trace.roots() if spans is None else spans
    rows = attribute_spans(forest)
    roots_total = sum(root.duration_s or 0.0 for root in forest)
    report = {
        "rows": [row.to_dict() for row in rows],
        "spans_total_s": round(roots_total, 6),
        "kernels": _active_kernels(),
    }
    retries, simulated_s = _retry_wait(forest)
    if retries:
        # Simulated backoff is budgeted but never slept, so it is real
        # attack time without being wall time -- report it on its own
        # line rather than letting it vanish into zero-duration spans.
        report["retry_waits"] = retries
        report["retry_wait_simulated_s"] = round(simulated_s, 6)
    if wall_s is not None:
        report["wall_s"] = round(wall_s, 6)
        report["coverage"] = round(roots_total / wall_s, 4) if wall_s else 0.0
    return report


def _retry_wait(forest: Sequence[trace.Span]) -> tuple[int, float]:
    """(count, simulated seconds) summed over ``retry.wait`` spans."""
    count, simulated = 0, 0.0
    for root in forest:
        for sp in root.walk():
            if sp.name == "retry.wait":
                count += 1
                simulated += float(sp.attrs.get("simulated_delay_s", 0.0))
    return count, simulated


def _active_kernels() -> dict:
    """The kernel selections in effect for this process."""
    from repro.physics.pool_array import get_aging_kernel
    from repro.sensor.tdc import get_capture_kernel

    return {
        "capture": get_capture_kernel(),
        "aging": get_aging_kernel(),
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.3f}s"


def render_report(report: dict) -> str:
    """ASCII table of an attribution report (see :func:`build_report`)."""
    rows = report["rows"]
    total = report["spans_total_s"] or 1.0
    name_width = max([len(r["name"]) for r in rows] + [len("span")])
    lines = [
        f"{'span':<{name_width}}  {'count':>7}  {'total':>9}  "
        f"{'self':>9}  {'self%':>6}  {'mean':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>7}  "
            f"{_fmt_seconds(row['total_s']):>9}  "
            f"{_fmt_seconds(row['self_s']):>9}  "
            f"{row['self_s'] / total * 100.0:>5.1f}%  "
            f"{_fmt_seconds(row['mean_s']):>9}"
        )
    kernels = report.get("kernels", {})
    if kernels:
        lines.append(
            "kernels: "
            + " ".join(f"{k}={v}" for k, v in sorted(kernels.items()))
        )
    if report.get("retry_waits"):
        lines.append(
            f"retry: {report['retry_waits']} backoff wait(s), "
            f"{_fmt_seconds(report['retry_wait_simulated_s'])} simulated "
            f"(budgeted, never slept; excluded from wall time)"
        )
    if "coverage" in report:
        lines.append(
            f"spans cover {_fmt_seconds(report['spans_total_s'])} of "
            f"{_fmt_seconds(report['wall_s'])} measured wall time "
            f"({report['coverage'] * 100.0:.1f}%)"
        )
    return "\n".join(lines)
