"""Context-manager spans: nested wall-clock timing of pipeline stages.

The attack pipeline is a tree of phases -- an experiment contains
protocol cycles, a cycle contains Condition and Measurement phases, a
Measurement phase contains one capture per route.  A :class:`Span`
records the wall-clock cost of one such stage (via
:func:`time.perf_counter`) and its children, so a finished run yields a
span *tree* mirroring the pipeline's structure.

Tracing is **off by default** and the disabled path is a deliberate
no-op fast path: :func:`span` returns a shared null context manager
without allocating anything, so instrumentation left in hot loops (one
span per capture, hundreds per experiment) costs a single predicate
check per call.  Enable with :func:`enable` (the CLI's ``--trace``
flag) or the ``REPRO_TRACE=1`` environment variable.

Usage::

    from repro.observability import trace

    trace.enable()
    with trace.span("experiment", experiment="exp1"):
        with trace.span("phase.measurement"):
            ...
    print(trace.render_tree())
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Optional

__all__ = [
    "Span",
    "enable",
    "disable",
    "is_enabled",
    "span",
    "current_span",
    "roots",
    "clear",
    "attach",
    "dump_state",
    "merge_state",
    "tree_as_dicts",
    "render_tree",
]

# Spans time with perf_counter (monotonic, high resolution), but a
# cross-process timeline needs a shared clock.  This pair anchors the
# process's perf_counter domain to the Unix epoch once at import, so
# any span start can be mapped to wall-clock time without paying a
# time() syscall per span.
_ANCHOR_PERF: float = perf_counter()
_ANCHOR_UNIX: float = time.time()


@dataclass
class Span:
    """One timed pipeline stage and its nested children."""

    name: str
    attrs: dict = field(default_factory=dict)
    started_s: float = 0.0
    duration_s: Optional[float] = None
    children: list = field(default_factory=list)
    #: Explicit wall-clock start, only set on spans rebuilt from another
    #: process's dump (whose perf_counter domain is meaningless here).
    started_unix: Optional[float] = None

    def set(self, **attrs) -> None:
        """Attach (or update) attributes on a live span."""
        self.attrs.update(attrs)

    def start_unix(self) -> float:
        """Wall-clock start time (Unix epoch seconds).

        Locally recorded spans map their perf_counter start through the
        module's import-time anchor; spans merged from worker dumps
        carry the worker's wall-clock start directly.
        """
        if self.started_unix is not None:
            return self.started_unix
        return _ANCHOR_UNIX + (self.started_s - _ANCHOR_PERF)

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.duration_s is not None

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Nesting depth of the subtree rooted here (a leaf is 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def to_dict(self) -> dict:
        """JSON-ready representation of the subtree."""
        payload = {
            "name": self.name,
            "duration_s": self.duration_s,
            "started_unix": self.start_unix(),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output.

        The inverse of :meth:`to_dict` up to the perf_counter start
        (which is process-local and not serialised); the wall-clock
        start survives the round trip via ``started_unix``.
        """
        return cls(
            name=payload["name"],
            attrs=dict(payload.get("attrs", {})),
            duration_s=payload.get("duration_s"),
            children=[
                cls.from_dict(child)
                for child in payload.get("children", [])
            ],
            started_unix=payload.get("started_unix"),
        )


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that pushes/pops one real span on the tracer."""

    __slots__ = ("_span",)

    def __init__(self, sp: Span) -> None:
        self._span = sp

    def __enter__(self) -> Span:
        _stack.append(self._span)
        self._span.started_s = perf_counter()
        return self._span

    def __exit__(self, *exc_info) -> None:
        sp = self._span
        sp.duration_s = perf_counter() - sp.started_s
        popped = _stack.pop()
        if popped is not sp:  # pragma: no cover - indicates misuse
            _stack.append(popped)
        if _stack:
            _stack[-1].children.append(sp)
        else:
            _roots.append(sp)


_enabled: bool = os.environ.get("REPRO_TRACE", "") not in ("", "0", "off")
_stack: list[Span] = []
_roots: list[Span] = []


def enable() -> None:
    """Turn span collection on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn span collection off; already-collected spans are kept."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether spans are currently being collected."""
    return _enabled


def span(name: str, **attrs):
    """A context manager timing one pipeline stage.

    When tracing is disabled this returns a shared null object -- the
    no-op fast path -- so it is safe (and cheap) to leave in hot loops.
    """
    if not _enabled:
        return _NULL_SPAN
    return _ActiveSpan(Span(name=name, attrs=attrs))


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` outside any span."""
    return _stack[-1] if _stack else None


def roots() -> tuple[Span, ...]:
    """All finished top-level spans, oldest first."""
    return tuple(_roots)


def clear() -> None:
    """Drop every collected span (open and finished)."""
    _stack.clear()
    _roots.clear()


def attach(sp: Span) -> None:
    """Graft an already-finished span (tree) into the collected forest.

    The span becomes a child of the innermost open span, or a new root
    if no span is open -- the mechanism by which a parent process
    splices worker span trees into its own under the sweep span that
    spawned them.
    """
    if _stack:
        _stack[-1].children.append(sp)
    else:
        _roots.append(sp)


def dump_state() -> dict:
    """Serialisable dump of the finished span forest for shipping
    across a process boundary.

    The payload records the producing process id so the consumer can
    attribute the spans; fold it into another process's forest with
    :func:`merge_state`.
    """
    return {"pid": os.getpid(), "spans": tree_as_dicts()}


def merge_state(state: dict, **attrs) -> int:
    """Fold a :func:`dump_state` payload into this process's forest.

    Every merged root span is tagged with the dump's ``worker_pid``
    plus any extra ``attrs`` (shard index, seed, ...), and attached
    under the currently open span (see :func:`attach`).  Returns the
    number of root spans merged.
    """
    pid = state.get("pid")
    merged = 0
    for payload in state.get("spans", ()):
        sp = Span.from_dict(payload)
        if pid is not None:
            sp.attrs.setdefault("worker_pid", pid)
        sp.attrs.update(attrs)
        attach(sp)
        merged += 1
    return merged


def tree_as_dicts() -> list[dict]:
    """The finished span forest as JSON-ready dictionaries."""
    return [root.to_dict() for root in _roots]


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "open"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_tree(
    spans: Optional[tuple] = None,
    max_children: int = 6,
) -> str:
    """ASCII rendering of the span forest.

    Sibling lists longer than ``max_children`` are elided (first
    ``max_children`` shown, then a ``... (+N more)`` marker) so a
    200-cycle experiment stays readable.
    """
    lines: list[str] = []

    def emit(sp: Span, indent: int) -> None:
        attrs = ""
        if sp.attrs:
            attrs = " " + " ".join(f"{k}={v}" for k, v in sp.attrs.items())
        lines.append(
            f"{'  ' * indent}{sp.name} [{_format_duration(sp.duration_s)}]"
            f"{attrs}"
        )
        shown = sp.children[:max_children]
        for child in shown:
            emit(child, indent + 1)
        hidden = len(sp.children) - len(shown)
        if hidden > 0:
            total = sum(c.duration_s or 0.0 for c in sp.children[max_children:])
            lines.append(
                f"{'  ' * (indent + 1)}... (+{hidden} more, "
                f"{_format_duration(total)})"
            )

    for root in (roots() if spans is None else spans):
        emit(root, 0)
    return "\n".join(lines)
