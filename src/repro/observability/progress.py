"""Live progress telemetry: a structured event stream for long runs.

A multi-hundred-seed sweep used to run dark: nothing between the
command line and the final distribution summary.  This module gives
every long-running pipeline a single event stream with three shapes of
event:

* ``phase`` -- a named stage transition (``experiment.burn``,
  ``sweep``), with whatever attributes the caller knows (totals,
  hours);
* ``seed_done`` -- one Monte Carlo seed finished (or was replayed from
  a resume journal), with its value, wall time and shard attribution;
* ``event`` -- an operational occurrence worth surfacing live: a fault
  injection, a retry, a route degrading to a guess.

Emitters render the stream two ways: :class:`TtyProgress` keeps a
single ``\\r``-rewritten status line on a terminal (completed/total,
moving-average rate, ETA), and :class:`JsonlProgress` writes one JSON
object per event for machines (``--progress jsonl``).  Both write to
stderr so stdout stays parseable.

Producers do not hold an emitter; they call the module-level
:func:`note_phase` / :func:`note_seed_done` / :func:`note_event`
hooks, which are a single ``None`` check when no emitter is installed
-- the same fast-path contract the fault-injection sites keep.  The
CLI installs an emitter (possibly a :func:`compose` of a terminal view
and the run store's :class:`CollectingEmitter`) around each command.

Worker processes under ``--jobs N`` do not inherit the parent's
emitter; per-seed completions are emitted parent-side as results are
collected, so the progress view covers sharded sweeps too, while
per-capture events from inside workers stay in the workers.
"""

from __future__ import annotations

import json
import math
import sys
import time
from collections import deque
from typing import Callable, Optional, TextIO

__all__ = [
    "ProgressEmitter",
    "TtyProgress",
    "JsonlProgress",
    "CollectingEmitter",
    "compose",
    "make_progress",
    "set_emitter",
    "get_emitter",
    "note_phase",
    "note_seed_done",
    "note_event",
    "note_sim_hours",
]

#: Seed completions kept for the moving-average rate estimate.
RATE_WINDOW = 16

#: Minimum wall seconds between sim-tick renders (fleet clock advances
#: arrive per event; re-painting each one would swamp the terminal).
SIM_RENDER_INTERVAL_S = 0.1


class ProgressEmitter:
    """Base emitter: every sink overrides the three event methods."""

    def phase(self, name: str, **fields) -> None:
        """A named stage transition."""

    def seed_done(
        self,
        seed: int,
        value: float,
        elapsed_s: float = 0.0,
        shard: Optional[int] = None,
        worker_pid: Optional[int] = None,
        resumed: bool = False,
    ) -> None:
        """One seed's evaluation finished (or replayed from a journal)."""

    def event(self, kind: str, **fields) -> None:
        """An operational occurrence (fault, retry, degraded route)."""

    def sim_tick(self, sim_hours: float) -> None:
        """The simulated clock advanced (fleet runs measure work in
        sim-hours, not seeds; the phase's ``sim_total_hours`` field
        announces the horizon this progresses toward)."""

    def close(self) -> None:
        """Flush and release the output (end of run)."""


class TtyProgress(ProgressEmitter):
    """A single rewritten status line for humans at a terminal.

    Tracks completed seeds against the announced total (the ``total``
    field of the last ``phase`` event, or the constructor's), estimates
    the completion rate over a moving window of recent completions and
    projects an ETA from it.  Operational events tick per-kind tallies
    displayed at the end of the line.

    ``clock`` is injectable so tests can drive the rate/ETA arithmetic
    deterministically.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        total: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.total = total
        self.completed = 0
        self.phase_name = ""
        self.last_value: Optional[float] = None
        self.tallies: dict[str, int] = {}
        self._window: deque[float] = deque(maxlen=RATE_WINDOW)
        self.sim_hours: Optional[float] = None
        self.sim_total_hours: Optional[float] = None
        self._sim_window: deque[tuple[float, float]] = deque(
            maxlen=RATE_WINDOW
        )
        self._last_sim_render = -math.inf
        self._dirty = False

    # -- event intake -------------------------------------------------

    def phase(self, name: str, **fields) -> None:
        self.phase_name = name
        if "total" in fields and fields["total"] is not None:
            self.total = int(fields["total"])
        if fields.get("sim_total_hours") is not None:
            self.sim_total_hours = float(fields["sim_total_hours"])
        self._render()

    def sim_tick(self, sim_hours: float) -> None:
        self.sim_hours = float(sim_hours)
        now = self._clock()
        self._sim_window.append((now, self.sim_hours))
        done = (self.sim_total_hours is not None
                and self.sim_hours >= self.sim_total_hours)
        if not done and now - self._last_sim_render < SIM_RENDER_INTERVAL_S:
            return
        self._last_sim_render = now
        self._render()

    def seed_done(self, seed, value, elapsed_s=0.0, shard=None,
                  worker_pid=None, resumed=False) -> None:
        self.completed += 1
        self.last_value = value
        self._window.append(self._clock())
        if resumed:
            self.tallies["resumed"] = self.tallies.get("resumed", 0) + 1
        self._render()

    def event(self, kind: str, **fields) -> None:
        root = kind.split(".", 1)[0]
        self.tallies[root] = self.tallies.get(root, 0) + 1
        self._render()

    # -- rate / ETA ---------------------------------------------------

    def rate_per_s(self) -> Optional[float]:
        """Moving-average completions per second (None until 2 ticks)."""
        if len(self._window) < 2:
            return None
        span = self._window[-1] - self._window[0]
        if span <= 0.0:
            return None
        return (len(self._window) - 1) / span

    def eta_s(self) -> Optional[float]:
        """Projected seconds to completion (None without rate/total)."""
        rate = self.rate_per_s()
        if rate is None or self.total is None:
            return None
        remaining = max(self.total - self.completed, 0)
        return remaining / rate

    def sim_rate_per_s(self) -> Optional[float]:
        """Moving-average simulated hours per wall second."""
        if len(self._sim_window) < 2:
            return None
        w0, s0 = self._sim_window[0]
        w1, s1 = self._sim_window[-1]
        if w1 <= w0:
            return None
        return (s1 - s0) / (w1 - w0)

    def sim_eta_s(self) -> Optional[float]:
        """Projected wall seconds until the sim horizon."""
        rate = self.sim_rate_per_s()
        if (rate is None or rate <= 0.0 or self.sim_hours is None
                or self.sim_total_hours is None):
            return None
        return max(self.sim_total_hours - self.sim_hours, 0.0) / rate

    # -- rendering ----------------------------------------------------

    def render_line(self) -> str:
        """The current status line (without the carriage return)."""
        parts = []
        if self.phase_name:
            parts.append(f"[{self.phase_name}]")
        if self.total is not None:
            parts.append(f"{self.completed}/{self.total}")
        elif self.completed:
            parts.append(f"{self.completed} done")
        rate = self.rate_per_s()
        if rate is not None:
            parts.append(f"{rate:.2f}/s")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {_format_eta(eta)}")
        if self.sim_hours is not None:
            if self.sim_total_hours is not None:
                parts.append(
                    f"simh {self.sim_hours:.1f}/{self.sim_total_hours:.0f}"
                )
            else:
                parts.append(f"simh {self.sim_hours:.1f}")
            sim_rate = self.sim_rate_per_s()
            if sim_rate is not None:
                parts.append(f"{sim_rate:.1f} simh/s")
            sim_eta = self.sim_eta_s()
            if sim_eta is not None:
                parts.append(f"sim-eta {_format_eta(sim_eta)}")
        if self.last_value is not None:
            parts.append(f"last {self.last_value:.3f}")
        for kind, count in sorted(self.tallies.items()):
            parts.append(f"{kind}={count}")
        return "  ".join(parts)

    def _render(self) -> None:
        line = self.render_line()
        # Pad over the previous line's tail before \r-rewriting it.
        self._stream.write("\r" + line.ljust(79)[:200])
        self._stream.flush()
        self._dirty = True

    def close(self) -> None:
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False


def _format_eta(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"


class JsonlProgress(ProgressEmitter):
    """One JSON object per event -- the machine-readable stream.

    Every line carries ``event`` (``phase`` / ``seed_done`` / the
    operational kind) and ``t`` (unix seconds); ``seed_done`` lines add
    the moving-average ``rate_per_s`` and ``eta_s`` so a consumer needs
    no windowing of its own.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        total: Optional[int] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.total = total
        self.completed = 0
        self._window: deque[float] = deque(maxlen=RATE_WINDOW)
        self.sim_total_hours: Optional[float] = None
        self._sim_window: deque[tuple[float, float]] = deque(
            maxlen=RATE_WINDOW
        )
        self._last_sim_write = -math.inf

    def _write(self, payload: dict) -> None:
        self._stream.write(json.dumps(payload) + "\n")
        self._stream.flush()

    def phase(self, name: str, **fields) -> None:
        if "total" in fields and fields["total"] is not None:
            self.total = int(fields["total"])
        if fields.get("sim_total_hours") is not None:
            self.sim_total_hours = float(fields["sim_total_hours"])
        self._write({"event": "phase", "t": self._clock(), "name": name,
                     **fields})

    def sim_tick(self, sim_hours: float) -> None:
        now = self._clock()
        self._sim_window.append((now, float(sim_hours)))
        done = (self.sim_total_hours is not None
                and sim_hours >= self.sim_total_hours)
        if not done and now - self._last_sim_write < SIM_RENDER_INTERVAL_S:
            return
        self._last_sim_write = now
        rate = None
        if len(self._sim_window) >= 2:
            w0, s0 = self._sim_window[0]
            w1, s1 = self._sim_window[-1]
            if w1 > w0:
                rate = (s1 - s0) / (w1 - w0)
        eta = None
        if rate and self.sim_total_hours is not None:
            eta = max(self.sim_total_hours - sim_hours, 0.0) / rate
        self._write({
            "event": "sim_tick", "t": now,
            "sim_hours": float(sim_hours),
            "sim_total_hours": self.sim_total_hours,
            "sim_rate_per_s": rate, "sim_eta_s": eta,
        })

    def seed_done(self, seed, value, elapsed_s=0.0, shard=None,
                  worker_pid=None, resumed=False) -> None:
        self.completed += 1
        now = self._clock()
        self._window.append(now)
        rate = None
        if len(self._window) >= 2:
            span = self._window[-1] - self._window[0]
            if span > 0.0:
                rate = (len(self._window) - 1) / span
        eta = None
        if rate is not None and self.total is not None:
            eta = max(self.total - self.completed, 0) / rate
        self._write({
            "event": "seed_done", "t": now, "seed": int(seed),
            "value": value, "elapsed_s": round(float(elapsed_s), 6),
            "shard": shard, "worker_pid": worker_pid,
            "resumed": bool(resumed), "completed": self.completed,
            "total": self.total, "rate_per_s": rate, "eta_s": eta,
        })

    def event(self, kind: str, **fields) -> None:
        self._write({"event": kind, "t": self._clock(), **fields})


class CollectingEmitter(ProgressEmitter):
    """Accumulate the stream in memory (the run store's recording sink).

    ``seed_rows`` holds one dict per *distinct* seed -- a seed replayed
    from a resume journal and then (wrongly) re-run would overwrite,
    not duplicate, so the run store records exactly one row per seed.
    """

    def __init__(self) -> None:
        self.phases: list[dict] = []
        self._seed_rows: dict[int, dict] = {}
        self.event_counts: dict[str, int] = {}
        self.sim_hours: Optional[float] = None
        self.sim_ticks = 0

    def phase(self, name: str, **fields) -> None:
        self.phases.append({"name": name, **fields})

    def seed_done(self, seed, value, elapsed_s=0.0, shard=None,
                  worker_pid=None, resumed=False) -> None:
        self._seed_rows[int(seed)] = {
            "seed": int(seed),
            "value": float(value),
            "elapsed_s": float(elapsed_s),
            "shard": shard,
            "worker_pid": worker_pid,
            "resumed": bool(resumed),
        }

    def event(self, kind: str, **fields) -> None:
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1

    def sim_tick(self, sim_hours: float) -> None:
        self.sim_hours = float(sim_hours)
        self.sim_ticks += 1

    @property
    def seed_rows(self) -> list[dict]:
        """Per-seed rows in seed order."""
        return [self._seed_rows[s] for s in sorted(self._seed_rows)]


class _Compound(ProgressEmitter):
    def __init__(self, emitters) -> None:
        self.emitters = tuple(emitters)

    def phase(self, name: str, **fields) -> None:
        for emitter in self.emitters:
            emitter.phase(name, **fields)

    def seed_done(self, *args, **kwargs) -> None:
        for emitter in self.emitters:
            emitter.seed_done(*args, **kwargs)

    def event(self, kind: str, **fields) -> None:
        for emitter in self.emitters:
            emitter.event(kind, **fields)

    def sim_tick(self, sim_hours: float) -> None:
        for emitter in self.emitters:
            emitter.sim_tick(sim_hours)

    def close(self) -> None:
        for emitter in self.emitters:
            emitter.close()


def compose(*emitters: Optional[ProgressEmitter]) -> Optional[ProgressEmitter]:
    """Fan one stream out to several sinks (``None`` entries dropped)."""
    live = [e for e in emitters if e is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]
    return _Compound(live)


def make_progress(
    mode: Optional[str],
    stream: Optional[TextIO] = None,
    total: Optional[int] = None,
) -> Optional[ProgressEmitter]:
    """Build the emitter a ``--progress MODE`` flag asked for.

    ``"tty"`` forces the terminal view, ``"jsonl"`` the machine
    stream, ``"off"``/``None`` nothing, and ``"auto"`` (the CLI
    default) picks the terminal view only when stderr actually is a
    terminal -- so piped and CI runs stay byte-stable.
    """
    if mode in (None, "off", False):
        return None
    if mode == "jsonl":
        return JsonlProgress(stream=stream, total=total)
    if mode == "tty":
        return TtyProgress(stream=stream, total=total)
    if mode == "auto":
        target = stream if stream is not None else sys.stderr
        if getattr(target, "isatty", lambda: False)():
            return TtyProgress(stream=target, total=total)
        return None
    from repro.errors import ConfigurationError

    raise ConfigurationError(
        f"unknown progress mode {mode!r}; choose auto, tty, jsonl or off"
    )


#: The process-global emitter the note_* fast paths check.
_EMITTER: Optional[ProgressEmitter] = None


def set_emitter(emitter: Optional[ProgressEmitter]) -> Optional[ProgressEmitter]:
    """Install (or clear, with ``None``) the global emitter."""
    global _EMITTER
    previous = _EMITTER
    _EMITTER = emitter
    return previous


def get_emitter() -> Optional[ProgressEmitter]:
    """The installed emitter, or ``None``."""
    return _EMITTER


def note_phase(name: str, **fields) -> None:
    """Producer hook: a stage transition (no-op without an emitter)."""
    if _EMITTER is None:
        return
    _EMITTER.phase(name, **fields)


def note_seed_done(seed: int, value: float, elapsed_s: float = 0.0,
                   shard: Optional[int] = None,
                   worker_pid: Optional[int] = None,
                   resumed: bool = False) -> None:
    """Producer hook: one seed finished (no-op without an emitter)."""
    if _EMITTER is None:
        return
    _EMITTER.seed_done(seed, value, elapsed_s=elapsed_s, shard=shard,
                       worker_pid=worker_pid, resumed=resumed)


def note_event(kind: str, **fields) -> None:
    """Producer hook: an operational event (no-op without an emitter)."""
    if _EMITTER is None:
        return
    _EMITTER.event(kind, **fields)


def note_sim_hours(sim_hours: float) -> None:
    """Producer hook: the simulated clock moved (no-op without an
    emitter).  Fleet event loops call this once per clock advance."""
    if _EMITTER is None:
        return
    _EMITTER.sim_tick(sim_hours)
