"""Cross-run analytics: statistical comparison and trends over history.

One recorded run is an anecdote; the run store makes populations.
This module turns two recorded runs into a defensible verdict
(:func:`compare_runs`) and a run series into a trend
(:func:`trend_series`):

* **Recovery accuracy** is compared across the two runs' per-seed
  values with a seeded percentile-bootstrap confidence interval on the
  difference of means plus a Wilcoxon-Mann-Whitney rank test (both
  from :mod:`repro.analysis.stats`).
* **Latency histograms** stored in each run's lossless metrics dump
  are compared on their retained reservoirs with the same rank test,
  and their p50/p95/p99 summaries are tabulated side by side.
* **Counters** are reported as deltas (informational -- two runs of
  different shapes legitimately count different work).

Every compared key is direction-classified with
:func:`repro.observability.benchdiff.classify_key` -- the same
"``*_seconds`` regress upward, ``*accuracy*`` regress downward" rule
the bench gate uses -- and folded into one of four verdicts:

``CONFIRMED``
    the new run is worse past the minimum effect size *and* the
    statistics agree (CI excluding zero, or rank-test significance);
``SUSPECT``
    worse past the effect floor, but the statistics cannot rule out
    noise (small n, high variance);
``IMPROVED`` / ``OK``
    better past the floor, or within it.

``repro runs compare A B --gate`` exits nonzero exactly when a
``CONFIRMED`` regression is present -- the durable-baseline gate the
perf and mitigation roadmap items build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.stats import bootstrap_mean_diff_ci, rank_sum_test
from repro.errors import AnalysisError, ConfigurationError
from repro.observability.benchdiff import classify_key
from repro.observability.metrics import Histogram

__all__ = [
    "MetricComparison",
    "CounterDelta",
    "RunComparison",
    "compare_runs",
    "compare_samples",
    "trend_series",
    "render_comparison",
    "render_trend",
]

#: Histograms worth comparing statistically even when many are stored.
#: Everything else still appears in the percentile table.
_DEFAULT_ALPHA = 0.05
_DEFAULT_MIN_EFFECT_PCT = 5.0


@dataclass(frozen=True)
class MetricComparison:
    """One metric compared between run A (baseline) and run B (new)."""

    key: str
    direction: str  # "lower" | "higher" | "info" (benchdiff.classify_key)
    n_a: int
    n_b: int
    mean_a: float
    mean_b: float
    ci_low: Optional[float]  # bootstrap CI on mean_b - mean_a
    ci_high: Optional[float]
    p_value: Optional[float]  # rank-sum, two-sided
    verdict: str  # CONFIRMED | SUSPECT | IMPROVED | OK | INFO

    @property
    def diff(self) -> float:
        """Point difference, new minus baseline."""
        return self.mean_b - self.mean_a

    @property
    def change_pct(self) -> Optional[float]:
        """Relative change in percent (None when the baseline is 0)."""
        if self.mean_a == 0.0:
            return None
        return self.diff / abs(self.mean_a) * 100.0

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "key": self.key,
            "direction": self.direction,
            "n_a": self.n_a,
            "n_b": self.n_b,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "diff": self.diff,
            "change_pct": self.change_pct,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "p_value": self.p_value,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class CounterDelta:
    """One counter's values across the two runs (informational)."""

    key: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a


def compare_samples(
    key: str,
    sample_a,
    sample_b,
    alpha: float = _DEFAULT_ALPHA,
    min_effect_pct: float = _DEFAULT_MIN_EFFECT_PCT,
    n_boot: int = 2000,
    boot_seed: int = 7,
) -> MetricComparison:
    """Compare two samples of one metric and classify the outcome.

    The direction comes from the key name (the bench-gate convention);
    significance from a bootstrap CI on the mean difference and a rank
    test; and the effect floor ``min_effect_pct`` keeps a statistically
    real but operationally irrelevant drift (0.3% on a 4096-point
    reservoir) out of the CONFIRMED bucket.
    """
    sample_a = [float(v) for v in sample_a]
    sample_b = [float(v) for v in sample_b]
    if not sample_a or not sample_b:
        raise AnalysisError(f"metric {key!r} needs data on both sides")
    mean_a = sum(sample_a) / len(sample_a)
    mean_b = sum(sample_b) / len(sample_b)
    ci_low = ci_high = p_value = None
    if len(sample_a) >= 2 or len(sample_b) >= 2:
        ci_low, ci_high = bootstrap_mean_diff_ci(
            sample_a, sample_b, n_boot=n_boot, seed=boot_seed
        )
        p_value = rank_sum_test(sample_a, sample_b).p_value
    direction = classify_key(key)
    verdict = _classify(
        direction, mean_a, mean_b, ci_low, ci_high, p_value,
        alpha=alpha, min_effect_pct=min_effect_pct,
    )
    return MetricComparison(
        key=key, direction=direction,
        n_a=len(sample_a), n_b=len(sample_b),
        mean_a=mean_a, mean_b=mean_b,
        ci_low=ci_low, ci_high=ci_high, p_value=p_value,
        verdict=verdict,
    )


def _classify(
    direction: str,
    mean_a: float,
    mean_b: float,
    ci_low: Optional[float],
    ci_high: Optional[float],
    p_value: Optional[float],
    alpha: float,
    min_effect_pct: float,
) -> str:
    if direction == "info":
        return "INFO"
    diff = mean_b - mean_a
    if mean_a != 0.0:
        effect_pct = abs(diff) / abs(mean_a) * 100.0
    else:
        effect_pct = float("inf") if diff else 0.0
    if effect_pct < min_effect_pct:
        return "OK"
    worse = diff > 0.0 if direction == "lower" else diff < 0.0
    if not worse:
        return "IMPROVED"
    # Worse past the effect floor: is it statistically real?  With a
    # single value per side there is no spread to test; the point
    # delta past the floor is the only evidence and it confirms.
    significant = True
    if ci_low is not None and ci_high is not None:
        significant = not (ci_low <= 0.0 <= ci_high)
        if p_value is not None and p_value <= alpha:
            significant = True
    return "CONFIRMED" if significant else "SUSPECT"


@dataclass(frozen=True)
class RunComparison:
    """Everything ``repro runs compare`` reports for a pair of runs."""

    run_a: dict  # summary fields of the baseline run
    run_b: dict
    accuracy: Optional[MetricComparison]
    histograms: tuple[MetricComparison, ...]
    percentiles: tuple[dict, ...]  # p50/p95/p99 side-by-side rows
    counters: tuple[CounterDelta, ...]

    @property
    def regressions(self) -> tuple[MetricComparison, ...]:
        """The CONFIRMED regressions (what ``--gate`` fails on)."""
        compared = list(self.histograms)
        if self.accuracy is not None:
            compared.append(self.accuracy)
        return tuple(c for c in compared if c.verdict == "CONFIRMED")

    @property
    def suspects(self) -> tuple[MetricComparison, ...]:
        """Worse-but-unproven comparisons."""
        compared = list(self.histograms)
        if self.accuracy is not None:
            compared.append(self.accuracy)
        return tuple(c for c in compared if c.verdict == "SUSPECT")

    @property
    def verdict(self) -> str:
        """Overall: CONFIRMED > SUSPECT > OK."""
        if self.regressions:
            return "CONFIRMED"
        if self.suspects:
            return "SUSPECT"
        return "OK"

    def to_dict(self) -> dict:
        """JSON-ready representation (CI/machine consumption)."""
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "verdict": self.verdict,
            "accuracy": (self.accuracy.to_dict()
                         if self.accuracy is not None else None),
            "histograms": [c.to_dict() for c in self.histograms],
            "percentiles": list(self.percentiles),
            "counters": [
                {"key": c.key, "a": c.a, "b": c.b, "delta": c.delta}
                for c in self.counters
            ],
            "regressions": [c.key for c in self.regressions],
            "suspects": [c.key for c in self.suspects],
        }


def _run_summary(run: dict) -> dict:
    return {
        key: run.get(key)
        for key in ("run_id", "kind", "experiment", "started_unix",
                    "wall_seconds", "outcome", "accuracy", "config_hash",
                    "git_revision", "git_dirty", "jobs")
    }


def _accuracy_samples(run: dict) -> list[float]:
    values = [
        float(row["value"])
        for row in run.get("seed_results", ())
        if row.get("value") is not None
    ]
    if values:
        return values
    if run.get("accuracy") is not None:
        return [float(run["accuracy"])]
    return []


def _histogram_states(run: dict) -> dict[str, dict]:
    metrics = run.get("metrics") or {}
    return dict(metrics.get("histograms") or {})


def _counter_values(run: dict) -> dict[str, float]:
    metrics = run.get("metrics") or {}
    return {
        name: float(payload.get("value", 0.0))
        for name, payload in (metrics.get("counters") or {}).items()
    }


def _summary_from_state(state: dict) -> dict:
    hist = Histogram(name="replay")
    hist.merge_raw(state)
    return hist.summary()


def compare_runs(
    store,
    ref_a: str,
    ref_b: str,
    alpha: float = _DEFAULT_ALPHA,
    min_effect_pct: float = _DEFAULT_MIN_EFFECT_PCT,
    n_boot: int = 2000,
    boot_seed: int = 7,
    experiment: Optional[str] = None,
) -> RunComparison:
    """Statistically compare two recorded runs (A = baseline, B = new).

    ``ref_a``/``ref_b`` are anything :meth:`RunStore.resolve` accepts
    (id prefix, ``latest``, ``latest~1``).  Comparing runs of different
    experiments is allowed but warned about in the rendered output --
    the statistics cannot know the configs differ on purpose.
    """
    run_a = store.get_run(store.resolve(ref_a, experiment=experiment))
    run_b = store.get_run(store.resolve(ref_b, experiment=experiment))

    accuracy = None
    samples_a = _accuracy_samples(run_a)
    samples_b = _accuracy_samples(run_b)
    if samples_a and samples_b:
        accuracy = compare_samples(
            "recovery_accuracy", samples_a, samples_b,
            alpha=alpha, min_effect_pct=min_effect_pct,
            n_boot=n_boot, boot_seed=boot_seed,
        )

    hists_a = _histogram_states(run_a)
    hists_b = _histogram_states(run_b)
    comparisons: list[MetricComparison] = []
    percentile_rows: list[dict] = []
    for name in sorted(set(hists_a) & set(hists_b)):
        state_a, state_b = hists_a[name], hists_b[name]
        summary_a = _summary_from_state(state_a)
        summary_b = _summary_from_state(state_b)
        percentile_rows.append({
            "key": name,
            "a": {q: summary_a[q] for q in ("count", "p50", "p95", "p99")},
            "b": {q: summary_b[q] for q in ("count", "p50", "p95", "p99")},
        })
        reservoir_a = list(state_a.get("reservoir") or ())
        reservoir_b = list(state_b.get("reservoir") or ())
        if classify_key(name) == "info" or not reservoir_a or not reservoir_b:
            continue
        comparisons.append(compare_samples(
            name, reservoir_a, reservoir_b,
            alpha=alpha, min_effect_pct=min_effect_pct,
            n_boot=n_boot, boot_seed=boot_seed,
        ))

    counters_a = _counter_values(run_a)
    counters_b = _counter_values(run_b)
    counters = tuple(
        CounterDelta(key=name, a=counters_a.get(name), b=counters_b.get(name))
        for name in sorted(set(counters_a) | set(counters_b))
    )
    return RunComparison(
        run_a=_run_summary(run_a),
        run_b=_run_summary(run_b),
        accuracy=accuracy,
        histograms=tuple(comparisons),
        percentiles=tuple(percentile_rows),
        counters=counters,
    )


def trend_series(
    store,
    experiment: str,
    config_hash: Optional[str] = None,
    limit: int = 100,
) -> list[dict]:
    """Accuracy/wall-time history of one experiment, oldest first.

    Grouping by ``config_hash`` keeps the series comparable; with
    ``None`` every config of the experiment interleaves (the hash
    travels with each point so a consumer can still facet).
    """
    if not experiment:
        raise ConfigurationError("trend needs an experiment name")
    rows = store.list_runs(experiment=experiment, config_hash=config_hash,
                           limit=limit)
    return [
        {
            "run_id": row["run_id"],
            "started_unix": row["started_unix"],
            "accuracy": row["accuracy"],
            "wall_seconds": row["wall_seconds"],
            "config_hash": row["config_hash"],
            "outcome": row["outcome"],
            "kind": row["kind"],
        }
        for row in reversed(rows)
    ]


# -- rendering --------------------------------------------------------


def _fmt(value, digits: int = 6) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}g}"


def render_comparison(comparison: RunComparison) -> str:
    """The ASCII report ``repro runs compare`` prints."""
    a, b = comparison.run_a, comparison.run_b
    lines = [
        f"run A (baseline): {a['run_id']}  {a['kind']}"
        f"  {a.get('experiment') or '-'}  acc={_fmt(a.get('accuracy'), 4)}",
        f"run B (new):      {b['run_id']}  {b['kind']}"
        f"  {b.get('experiment') or '-'}  acc={_fmt(b.get('accuracy'), 4)}",
    ]
    if a.get("experiment") != b.get("experiment"):
        lines.append("note: the runs are of different experiments; the "
                     "comparison below is cross-workload")
    elif a.get("config_hash") != b.get("config_hash"):
        lines.append("note: the runs have different config hashes; part "
                     "of any delta may be configuration, not code")
    lines.append("")
    header = (f"{'metric':<32} {'dir':<6} {'mean A':>12} {'mean B':>12} "
              f"{'change':>8}  {'95% CI of diff':>24} {'p':>8}  verdict")
    lines.append(header)
    lines.append("-" * len(header))
    compared = list(comparison.histograms)
    if comparison.accuracy is not None:
        compared.insert(0, comparison.accuracy)
    for c in compared:
        change = c.change_pct
        ci = ("-" if c.ci_low is None
              else f"[{c.ci_low:+.4g}, {c.ci_high:+.4g}]")
        lines.append(
            f"{c.key:<32} {c.direction:<6} {c.mean_a:>12.6g} "
            f"{c.mean_b:>12.6g} "
            f"{(f'{change:+.1f}%' if change is not None else '-'):>8}  "
            f"{ci:>24} {_fmt(c.p_value, 3):>8}  {c.verdict}"
        )
    if comparison.percentiles:
        lines.append("")
        lines.append(f"{'histogram':<32} {'n A':>8} {'n B':>8} "
                     f"{'p50 A':>10} {'p50 B':>10} {'p95 A':>10} "
                     f"{'p95 B':>10} {'p99 A':>10} {'p99 B':>10}")
        for row in comparison.percentiles:
            pa, pb = row["a"], row["b"]
            lines.append(
                f"{row['key']:<32} {pa['count']:>8} {pb['count']:>8} "
                f"{pa['p50']:>10.4g} {pb['p50']:>10.4g} "
                f"{pa['p95']:>10.4g} {pb['p95']:>10.4g} "
                f"{pa['p99']:>10.4g} {pb['p99']:>10.4g}"
            )
    moved = [c for c in comparison.counters
             if c.delta not in (None, 0.0)][:12]
    if moved:
        lines.append("")
        lines.append(f"{'counter':<40} {'A':>14} {'B':>14} {'delta':>12}")
        for c in moved:
            lines.append(f"{c.key:<40} {_fmt(c.a):>14} {_fmt(c.b):>14} "
                         f"{_fmt(c.delta):>12}")
    lines.append("")
    lines.append(f"verdict: {comparison.verdict}"
                 + (f" ({', '.join(c.key for c in comparison.regressions)}"
                    f" regressed)" if comparison.regressions else ""))
    return "\n".join(lines)


def render_trend(points: list[dict], width: int = 40) -> str:
    """A compact ASCII accuracy trend (oldest first) for the terminal."""
    if not points:
        return "(no runs)"
    lines = [f"{'run':<14} {'config':<14} {'outcome':<8} "
             f"{'accuracy':>9}  trend"]
    accuracies = [p["accuracy"] for p in points if p["accuracy"] is not None]
    lo = min(accuracies) if accuracies else 0.0
    hi = max(accuracies) if accuracies else 1.0
    span = (hi - lo) or 1.0
    for point in points:
        accuracy = point["accuracy"]
        if accuracy is None:
            bar = ""
            text = "-"
        else:
            bar = "#" * (1 + int((accuracy - lo) / span * (width - 1)))
            text = f"{accuracy:.4f}"
        lines.append(
            f"{point['run_id']:<14} {(point['config_hash'] or '-'):<14} "
            f"{point['outcome']:<8} {text:>9}  {bar}"
        )
    return "\n".join(lines)
