"""A process-global metrics registry: counters, gauges, histograms.

Mirrors the shape of a Prometheus client in a dependency-free way.
Instruments are created lazily and get-or-create by name, so call sites
simply do::

    from repro.observability.metrics import registry

    registry.counter("captures_total").inc()
    registry.histogram("capture_latency_seconds").observe(dt)

Recording is always on (an increment is nanoseconds; there is nothing
to gate), while the heavier span tracing lives in
:mod:`repro.observability.trace` behind an explicit switch.  Histograms
keep a bounded reservoir of recent observations for percentile
summaries, so memory stays O(1) over multi-hundred-hour campaigns.

Tests reset state between cases via :meth:`MetricsRegistry.reset`
(wired as an autouse fixture in ``tests/conftest.py``).
"""

from __future__ import annotations

import math
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "get_registry",
]

#: Observations kept per histogram for percentile estimation.  Old
#: observations are dropped FIFO once the reservoir fills; count/sum/
#: min/max remain exact over the full stream.
HISTOGRAM_RESERVOIR_SIZE = 4096


@dataclass
class Counter:
    """A monotonically increasing count of events."""

    name: str
    help: str = ""
    value: float = 0.0
    #: ``inc`` calls, as opposed to units counted: a batch kernel that
    #: counts 160 words per call performs one increment.  The overhead
    #: bench prices instrumentation by call, not by unit.
    increments: int = 0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount
        self.increments += 1


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level by ``amount`` (may be negative)."""
        self.value += amount


@dataclass
class Histogram:
    """A distribution of observations with percentile summaries."""

    name: str
    help: str = ""
    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    _reservoir: list = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        reservoir = self._reservoir
        reservoir.append(value)
        if len(reservoir) > HISTOGRAM_RESERVOIR_SIZE:
            del reservoir[0]

    @property
    def mean(self) -> float:
        """Mean over the full observation stream."""
        return self.total / self.count if self.count else 0.0

    def merge_raw(self, state: dict) -> None:
        """Fold another histogram's raw dump into this one.

        count/sum/min/max merge exactly; the reservoirs concatenate and
        re-trim FIFO, matching what interleaved ``observe`` calls would
        have retained up to reservoir churn.
        """
        self.count += int(state["count"])
        self.total += float(state["total"])
        for value in (state["min"], state["max"]):
            if value is None:
                continue
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        self._reservoir.extend(state["reservoir"])
        if len(self._reservoir) > HISTOGRAM_RESERVOIR_SIZE:
            del self._reservoir[: len(self._reservoir)
                                - HISTOGRAM_RESERVOIR_SIZE]

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained reservoir."""
        if not 0.0 <= p <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = max(math.ceil(p / 100.0 * len(ordered)) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def summary(self) -> dict:
        """count/sum/min/max/mean plus p50/p95/p99 -- the export shape."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Name-keyed store of instruments, get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._merged_dump_ids: set[str] = set()

    def _check_name_free(self, name: str, kind: dict) -> None:
        for family, instruments in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if instruments is not kind and name in instruments:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {family}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_name_free(name, self._counters)
            instrument = self._counters[name] = Counter(name=name, help=help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_name_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name=name, help=help)
        return instrument

    def histogram(self, name: str, help: str = "") -> Histogram:
        """Get or create the histogram ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_name_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name=name, help=help
            )
        return instrument

    @property
    def counters(self) -> dict[str, Counter]:
        """Registered counters by name (live view)."""
        return self._counters

    @property
    def gauges(self) -> dict[str, Gauge]:
        """Registered gauges by name (live view)."""
        return self._gauges

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Registered histograms by name (live view)."""
        return self._histograms

    def names(self) -> tuple[str, ...]:
        """Every registered metric name, sorted."""
        return tuple(
            sorted([*self._counters, *self._gauges, *self._histograms])
        )

    def snapshot(self) -> dict:
        """JSON-ready dump: counters/gauges as values, histograms as
        summaries."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def dump_state(self) -> dict:
        """Raw, lossless dump for cross-process merging.

        Unlike :meth:`snapshot` (which summarises histograms for
        export), this keeps the reservoirs so a parent process can fold
        a worker's instruments into its own registry with
        :meth:`merge_state` -- the mechanism the parallel Monte Carlo
        sweep uses to report per-seed metrics from its worker processes.

        Each dump carries a unique ``dump_id``; :meth:`merge_state`
        refuses to fold the same dump twice, so retry paths cannot
        double-count a shard.
        """
        return {
            "dump_id": uuid.uuid4().hex,
            "counters": {
                n: {"help": c.help, "value": c.value,
                    "increments": c.increments}
                for n, c in self._counters.items()
            },
            "gauges": {
                n: {"help": g.help, "value": g.value}
                for n, g in self._gauges.items()
            },
            "histograms": {
                n: {
                    "help": h.help,
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                    "reservoir": list(h._reservoir),
                }
                for n, h in self._histograms.items()
            },
        }

    def merge_state(self, state: dict) -> bool:
        """Fold a :meth:`dump_state` payload into this registry.

        Counters add (both value and increment count), gauges take the
        incoming level (last write wins), histograms merge exactly on
        count/sum/min/max.  A dump already merged into this registry
        (same ``dump_id``) is skipped -- the idempotence guard for
        retry/replay paths -- and ``False`` is returned; ``True`` means
        the dump was applied.
        """
        dump_id = state.get("dump_id")
        if dump_id is not None and dump_id in self._merged_dump_ids:
            return False
        for name, payload in state.get("counters", {}).items():
            counter = self.counter(name, payload.get("help", ""))
            amount = payload["value"]
            if amount < 0.0:
                raise ConfigurationError(
                    f"counter {name!r} cannot decrease (merge {amount})"
                )
            counter.value += amount
            counter.increments += int(payload.get("increments", 0))
        for name, payload in state.get("gauges", {}).items():
            self.gauge(name, payload.get("help", "")).set(payload["value"])
        for name, payload in state.get("histograms", {}).items():
            self.histogram(name, payload.get("help", "")).merge_raw(payload)
        if dump_id is not None:
            self._merged_dump_ids.add(dump_id)
        return True

    def reset(self) -> None:
        """Drop every instrument (tests run with a clean registry)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._merged_dump_ids.clear()


#: The process-global registry every instrumented module records into.
registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (function form for patching/tests)."""
    return registry
