"""The run store: a durable, queryable history of every invocation.

Pentimento's evaluation is longitudinal -- recovery accuracy is a
statistic over many seeded rentals, and a perf or mitigation claim only
means something against a recorded baseline.  This module keeps that
record: a stdlib-``sqlite3`` database (WAL journal, atomic transactions,
safe under concurrent writers) at ``.repro/runs.db`` by default, with
every experiment, sweep, chaos storm, profile and bench invocation
landing as one row plus its per-seed results.

Each run row stores the full provenance needed to trend and gate
against it months later:

* the :class:`~repro.observability.manifest.RunManifest` (version,
  interpreter, platform, argv, git revision + dirty flag, resolved
  kernel knobs);
* a canonical hash of the experiment config (so runs group into
  comparable (experiment, config-hash) series);
* the fault-plan hash for chaos runs;
* the metrics registry's lossless ``dump_state()`` (reservoirs
  included, so cross-run latency comparisons are statistical, not just
  point deltas);
* a route-status summary, the outcome and the wall time.

Per-seed rows carry shard/worker attribution under ``--jobs N`` and an
explicit ``resumed`` flag for seeds replayed from a checkpoint journal;
``(run_id, seed)`` is the primary key, so a killed-and-resumed sweep
records exactly one row per seed.

Selection: the ``REPRO_RUNSTORE`` environment variable or the CLI's
``--runstore PATH`` override the default path; the value ``off`` (or
``0``, or empty) disables recording entirely.  The CLI records every
eligible invocation automatically -- see ``repro runs list|show|
compare|export|gc``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ConfigurationError, PersistenceError

__all__ = [
    "DEFAULT_RUNSTORE_PATH",
    "RUNSTORE_ENV",
    "RUNSTORE_SCHEMA",
    "RunRecord",
    "RunStore",
    "resolve_runstore_path",
    "config_hash",
    "fault_plan_hash",
    "summarise_route_status",
]

PathLike = Union[str, Path]

#: Where the run database lives unless overridden.
DEFAULT_RUNSTORE_PATH = ".repro/runs.db"

#: Environment override: a path, or ``off``/``0``/empty to disable.
RUNSTORE_ENV = "REPRO_RUNSTORE"

#: Bumped on any incompatible table change; stored in ``PRAGMA
#: user_version`` and checked on open.  v2 added ``series_json`` (the
#: fleet flight recorder's sim-time series blob); v1 stores migrate in
#: place on open.
RUNSTORE_SCHEMA = 2

_CREATE_TABLES = """
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    kind            TEXT NOT NULL,
    experiment      TEXT,
    started_unix    REAL NOT NULL,
    wall_seconds    REAL,
    outcome         TEXT NOT NULL,
    exit_code       INTEGER,
    accuracy        REAL,
    seed            INTEGER,
    jobs            INTEGER,
    config_hash     TEXT,
    config_json     TEXT,
    kernels_json    TEXT,
    fault_plan_hash TEXT,
    git_revision    TEXT,
    git_dirty       INTEGER,
    argv_json       TEXT,
    manifest_json   TEXT,
    metrics_json    TEXT,
    route_status_json TEXT,
    extra_json      TEXT,
    series_json     TEXT
);
CREATE TABLE IF NOT EXISTS seed_results (
    run_id     TEXT NOT NULL,
    seed       INTEGER NOT NULL,
    value      REAL,
    elapsed_s  REAL,
    shard      INTEGER,
    worker_pid INTEGER,
    resumed    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, seed)
);
CREATE INDEX IF NOT EXISTS idx_runs_series
    ON runs (experiment, config_hash, started_unix);
CREATE INDEX IF NOT EXISTS idx_runs_started
    ON runs (started_unix);
"""


def resolve_runstore_path(
    cli_path: Optional[str] = None,
) -> Optional[Path]:
    """Where recording should go, or ``None`` when disabled.

    Precedence: explicit CLI value, then :data:`RUNSTORE_ENV`, then
    :data:`DEFAULT_RUNSTORE_PATH`.  At either level the values ``off``,
    ``0`` and the empty string disable recording.
    """
    value = cli_path if cli_path is not None else os.environ.get(RUNSTORE_ENV)
    if value is None:
        value = DEFAULT_RUNSTORE_PATH
    if str(value).strip().lower() in ("", "off", "0", "none"):
        return None
    return Path(value)


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)


def config_hash(config: Optional[dict]) -> Optional[str]:
    """A short stable hash of a config dict (canonical-JSON sha256).

    Runs with equal hashes are directly comparable: same experiment
    parameters, differing only in code version, seed set or machine.
    ``seed`` is excluded -- a seed sweep of one config is one series.
    """
    if config is None:
        return None
    scrubbed = {k: v for k, v in dict(config).items() if k != "seed"}
    digest = hashlib.sha256(_canonical_json(scrubbed).encode())
    return digest.hexdigest()[:12]


def fault_plan_hash(plan: Optional[dict]) -> Optional[str]:
    """A short stable hash of a serialised fault plan."""
    if plan is None:
        return None
    digest = hashlib.sha256(_canonical_json(dict(plan)).encode())
    return digest.hexdigest()[:12]


def summarise_route_status(route_status: Optional[dict]) -> Optional[dict]:
    """Collapse a per-route status dict to ``{status: count}``."""
    if not route_status:
        return None
    summary: dict[str, int] = {}
    for status in route_status.values():
        summary[status] = summary.get(status, 0) + 1
    return summary


@dataclass(frozen=True)
class RunRecord:
    """Everything one invocation stores (see :meth:`RunStore.record_run`)."""

    kind: str
    started_unix: float
    outcome: str
    experiment: Optional[str] = None
    wall_seconds: Optional[float] = None
    exit_code: Optional[int] = None
    accuracy: Optional[float] = None
    seed: Optional[int] = None
    jobs: Optional[int] = None
    config: Optional[dict] = None
    kernels: Optional[dict] = None
    fault_plan: Optional[dict] = None
    manifest: Optional[dict] = None
    metrics_state: Optional[dict] = None
    route_status: Optional[dict] = None
    argv: Sequence[str] = ()
    seed_rows: Sequence[dict] = ()
    extra: dict = field(default_factory=dict)
    series: Optional[dict] = None
    run_id: Optional[str] = None


class RunStore:
    """One run database: open lazily, write atomically.

    Every write happens in its own transaction with a generous busy
    timeout, so concurrent recorders (parallel CI jobs, a sweep and a
    bench) serialise instead of corrupting; WAL mode keeps readers
    unblocked while a writer commits.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._conn: Optional[sqlite3.Connection] = None

    # -- lifecycle ----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None:
            return self._conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            conn = sqlite3.connect(self.path, timeout=30.0)
        except sqlite3.Error as exc:
            raise PersistenceError(
                f"cannot open run store {self.path}: {exc}"
            ) from exc
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA synchronous=NORMAL")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            with conn:
                conn.executescript(_CREATE_TABLES)
                conn.execute(f"PRAGMA user_version={RUNSTORE_SCHEMA}")
        elif version == 1:
            # v1 -> v2: the sim-time series blob column.  Purely
            # additive, so old rows stay readable (series = None).
            with conn:
                conn.execute("ALTER TABLE runs ADD COLUMN series_json TEXT")
                conn.execute(f"PRAGMA user_version={RUNSTORE_SCHEMA}")
        elif version != RUNSTORE_SCHEMA:
            conn.close()
            raise PersistenceError(
                f"run store {self.path} has schema {version}; this build "
                f"reads {RUNSTORE_SCHEMA} (move the file aside or gc it)"
            )
        self._conn = conn
        return conn

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunStore":
        self._connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing ------------------------------------------------------

    def record_run(self, record: RunRecord) -> str:
        """Insert one run (and its seed rows) atomically; returns its id."""
        conn = self._connect()
        run_id = record.run_id or uuid.uuid4().hex[:12]
        manifest = record.manifest or {}
        kernels = record.kernels
        if kernels is None:
            kernels = manifest.get("kernels")
        with conn:
            conn.execute(
                """
                INSERT INTO runs (
                    run_id, kind, experiment, started_unix, wall_seconds,
                    outcome, exit_code, accuracy, seed, jobs,
                    config_hash, config_json, kernels_json,
                    fault_plan_hash, git_revision, git_dirty, argv_json,
                    manifest_json, metrics_json, route_status_json,
                    extra_json, series_json
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?,
                          ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    run_id,
                    record.kind,
                    record.experiment,
                    float(record.started_unix),
                    record.wall_seconds,
                    record.outcome,
                    record.exit_code,
                    record.accuracy,
                    record.seed,
                    record.jobs,
                    config_hash(record.config),
                    _dump_or_none(record.config),
                    _dump_or_none(kernels),
                    fault_plan_hash(record.fault_plan),
                    manifest.get("git_revision"),
                    _as_int_or_none(manifest.get("git_dirty")),
                    _dump_or_none(list(record.argv) or None),
                    _dump_or_none(record.manifest),
                    _dump_or_none(record.metrics_state),
                    _dump_or_none(
                        summarise_route_status(record.route_status)
                    ),
                    _dump_or_none(record.extra or None),
                    _dump_or_none(record.series),
                ),
            )
            conn.executemany(
                """
                INSERT OR REPLACE INTO seed_results (
                    run_id, seed, value, elapsed_s, shard, worker_pid,
                    resumed
                ) VALUES (?, ?, ?, ?, ?, ?, ?)
                """,
                [
                    (
                        run_id,
                        int(row["seed"]),
                        row.get("value"),
                        row.get("elapsed_s"),
                        row.get("shard"),
                        row.get("worker_pid"),
                        int(bool(row.get("resumed", False))),
                    )
                    for row in record.seed_rows
                ],
            )
        return run_id

    # -- reading ------------------------------------------------------

    _SUMMARY_COLUMNS = (
        "run_id, kind, experiment, started_unix, wall_seconds, outcome, "
        "exit_code, accuracy, seed, jobs, config_hash, fault_plan_hash, "
        "git_revision, git_dirty"
    )

    def list_runs(
        self,
        kind: Optional[str] = None,
        experiment: Optional[str] = None,
        config_hash: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Run summaries, newest first."""
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if experiment is not None:
            clauses.append("experiment = ?")
            params.append(experiment)
        if config_hash is not None:
            clauses.append("config_hash = ?")
            params.append(config_hash)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = (
            f"SELECT {self._SUMMARY_COLUMNS} FROM runs {where} "
            f"ORDER BY started_unix DESC, run_id DESC"
        )
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = self._connect().execute(sql, params).fetchall()
        return [dict(row) for row in rows]

    def resolve(self, ref: str, experiment: Optional[str] = None) -> str:
        """A run id from a reference: id prefix, ``latest`` or ``latest~N``.

        ``latest`` picks the newest run (optionally filtered to
        ``experiment``); ``latest~N`` the N-th newest before it.
        Ambiguous or unknown references raise
        :class:`~repro.errors.ConfigurationError`.
        """
        ref = ref.strip()
        if ref.startswith("latest"):
            back = 0
            if ref != "latest":
                try:
                    back = int(ref.split("~", 1)[1])
                except (IndexError, ValueError):
                    raise ConfigurationError(
                        f"bad run reference {ref!r}; use latest or latest~N"
                    ) from None
            runs = self.list_runs(experiment=experiment, limit=back + 1)
            if len(runs) <= back:
                raise ConfigurationError(
                    f"run store has {len(runs)} matching run(s); "
                    f"cannot resolve {ref!r}"
                )
            return runs[back]["run_id"]
        rows = self._connect().execute(
            "SELECT run_id FROM runs WHERE run_id LIKE ? "
            "ORDER BY started_unix DESC LIMIT 3",
            (ref + "%",),
        ).fetchall()
        if not rows:
            raise ConfigurationError(
                f"no run matches {ref!r} in {self.path}"
            )
        if len(rows) > 1:
            matches = ", ".join(row["run_id"] for row in rows)
            raise ConfigurationError(
                f"run reference {ref!r} is ambiguous ({matches}, ...)"
            )
        return rows[0]["run_id"]

    def get_run(self, run_id: str) -> dict:
        """One full run: every stored column, JSON blobs parsed, seed rows
        attached under ``"seed_results"``."""
        conn = self._connect()
        row = conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"no run {run_id!r} in {self.path}"
            )
        run = dict(row)
        for column in ("config_json", "kernels_json", "argv_json",
                       "manifest_json", "metrics_json",
                       "route_status_json", "extra_json", "series_json"):
            run[column[: -len("_json")]] = _load_or_none(run.pop(column))
        run["seed_results"] = [
            dict(seed_row)
            for seed_row in conn.execute(
                "SELECT seed, value, elapsed_s, shard, worker_pid, resumed "
                "FROM seed_results WHERE run_id = ? ORDER BY seed",
                (run_id,),
            ).fetchall()
        ]
        return run

    def seed_values(self, run_id: str) -> list[float]:
        """The per-seed metric values of one run, in seed order."""
        rows = self._connect().execute(
            "SELECT value FROM seed_results WHERE run_id = ? "
            "AND value IS NOT NULL ORDER BY seed",
            (run_id,),
        ).fetchall()
        return [float(row["value"]) for row in rows]

    def count_runs(self) -> int:
        """Total runs stored."""
        return int(
            self._connect().execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        )

    # -- maintenance --------------------------------------------------

    def gc(
        self,
        keep: Optional[int] = None,
        before_unix: Optional[float] = None,
        vacuum: bool = False,
    ) -> int:
        """Delete old runs; returns how many were removed.

        ``keep`` retains the N newest runs; ``before_unix`` drops runs
        started before the timestamp.  Both may combine (a run is
        deleted if either rule selects it).  ``vacuum`` compacts the
        file afterwards.
        """
        if keep is None and before_unix is None:
            raise ConfigurationError(
                "gc needs a retention rule: keep=N and/or before_unix=T"
            )
        if keep is not None and keep < 0:
            raise ConfigurationError(f"keep must be >= 0, got {keep}")
        conn = self._connect()
        doomed: set[str] = set()
        if keep is not None:
            rows = conn.execute(
                "SELECT run_id FROM runs "
                "ORDER BY started_unix DESC, run_id DESC "
                "LIMIT -1 OFFSET ?",
                (int(keep),),
            ).fetchall()
            doomed.update(row["run_id"] for row in rows)
        if before_unix is not None:
            rows = conn.execute(
                "SELECT run_id FROM runs WHERE started_unix < ?",
                (float(before_unix),),
            ).fetchall()
            doomed.update(row["run_id"] for row in rows)
        with conn:
            conn.executemany(
                "DELETE FROM seed_results WHERE run_id = ?",
                [(run_id,) for run_id in doomed],
            )
            conn.executemany(
                "DELETE FROM runs WHERE run_id = ?",
                [(run_id,) for run_id in doomed],
            )
        if vacuum:
            conn.execute("VACUUM")
        return len(doomed)

    def export_runs(
        self,
        kind: Optional[str] = None,
        experiment: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """The selected runs as one JSON-ready document (full rows)."""
        summaries = self.list_runs(kind=kind, experiment=experiment,
                                   limit=limit)
        return {
            "runstore_schema": RUNSTORE_SCHEMA,
            "path": str(self.path),
            "runs": [self.get_run(row["run_id"]) for row in summaries],
        }


def _dump_or_none(payload) -> Optional[str]:
    if payload is None:
        return None
    return json.dumps(payload, sort_keys=True, default=str)


def _load_or_none(text: Optional[str]):
    if text is None:
        return None
    return json.loads(text)


def _as_int_or_none(value) -> Optional[int]:
    if value is None:
        return None
    return int(bool(value))
