"""Self-contained HTML history report over the run store.

``repro report --history`` renders the recorded runs into a single
HTML file with zero external assets: per-experiment accuracy trend
charts (inline SVG, hover tooltips on every run point), latency
percentile tables reusing :func:`repro.analysis.report.render_table`,
counter deltas between the two newest runs of each series, and a
provenance table of the runs themselves.  The file is meant to be a CI
artifact -- download, open, done.

Chart conventions follow the repo's visualization rules: a single
accuracy series per chart (so no legend -- the title names it), a 2px
line with 8px markers in the categorical slot-1 blue, text always in
ink tokens (never the series color), hairline grid, and light/dark
palettes swapped by CSS custom properties under
``prefers-color-scheme``.
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.analysis.report import render_table
from repro.observability.analytics import compare_runs, trend_series
from repro.observability.metrics import Histogram

__all__ = ["render_history_html", "write_history_html"]

PathLike = Union[str, Path]

_CSS = """
:root {
  color-scheme: light dark;
}
body {
  margin: 0;
  padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
}
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --series-1:       #2a78d6;
  --border:         rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --series-1:       #3987e5;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 24px; }
.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin: 12px 0;
}
svg text { fill: var(--text-muted); font-size: 11px;
           font-family: system-ui, sans-serif; }
svg .grid { stroke: var(--gridline); stroke-width: 1; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .line { stroke: var(--series-1); stroke-width: 2; fill: none;
            stroke-linejoin: round; }
svg .dot  { fill: var(--series-1); }
svg .hit  { fill: transparent; }
svg .hit:hover + .dot, svg g:hover .dot { r: 6; }
pre {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px;
  overflow-x: auto;
  font-size: 12px;
  line-height: 1.5;
  color: var(--text-primary);
}
table { border-collapse: collapse; font-size: 13px; width: 100%; }
th, td { text-align: left; padding: 4px 12px 4px 0;
         border-bottom: 1px solid var(--gridline);
         font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600; }
.num { text-align: right; }
.spark-grid { display: flex; flex-wrap: wrap; gap: 12px; }
.spark {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 8px 12px;
}
.spark .name { color: var(--text-secondary); font-size: 12px;
               margin: 0 0 2px; }
.spark .value { color: var(--text-primary); font-size: 13px;
                font-variant-numeric: tabular-nums; margin: 0 0 4px; }
svg .spark-line { stroke: var(--series-1); stroke-width: 1.5; fill: none;
                  stroke-linejoin: round; }
"""


def _fmt_time(unix: Optional[float]) -> str:
    if unix is None:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(unix))


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}g}"


def _trend_svg(points: list[dict], width: int = 720,
               height: int = 200) -> str:
    """One accuracy-over-runs line chart as inline SVG.

    X is run order (recorded left to right, oldest first); Y is
    recovery accuracy.  Each point carries a native tooltip with the
    run id, timestamp and exact value -- the hover layer for a static
    artifact file.
    """
    plotted = [p for p in points if p.get("accuracy") is not None]
    if len(plotted) < 1:
        return "<p class='subtitle'>no accuracy-bearing runs yet</p>"
    pad_l, pad_r, pad_t, pad_b = 48, 16, 12, 28
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    values = [float(p["accuracy"]) for p in plotted]
    lo, hi = min(values), max(values)
    if hi == lo:
        lo, hi = lo - 0.05, hi + 0.05
    span = hi - lo
    lo -= span * 0.08
    hi += span * 0.08

    def x(i: int) -> float:
        if len(plotted) == 1:
            return pad_l + plot_w / 2.0
        return pad_l + i / (len(plotted) - 1) * plot_w

    def y(v: float) -> float:
        return pad_t + (1.0 - (v - lo) / (hi - lo)) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="recovery accuracy per recorded run">'
    ]
    for frac in (0.0, 0.5, 1.0):
        gy = pad_t + frac * plot_h
        value = hi - frac * (hi - lo)
        parts.append(f'<line class="grid" x1="{pad_l}" y1="{gy:.1f}" '
                     f'x2="{width - pad_r}" y2="{gy:.1f}"/>')
        parts.append(f'<text x="{pad_l - 6}" y="{gy + 4:.1f}" '
                     f'text-anchor="end">{value:.3f}</text>')
    parts.append(f'<line class="axis" x1="{pad_l}" y1="{pad_t + plot_h}" '
                 f'x2="{width - pad_r}" y2="{pad_t + plot_h}"/>')
    if len(plotted) >= 2:
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{x(i):.1f},{y(v):.1f}"
            for i, v in enumerate(values)
        )
        parts.append(f'<path class="line" d="{path}"/>')
    for i, point in enumerate(plotted):
        cx, cy = x(i), y(values[i])
        tip = (f"{point['run_id']} · {_fmt_time(point['started_unix'])} · "
               f"accuracy {values[i]:.4f}")
        parts.append(
            f'<g><circle class="hit" cx="{cx:.1f}" cy="{cy:.1f}" r="12">'
            f"<title>{html.escape(tip)}</title></circle>"
            f'<circle class="dot" cx="{cx:.1f}" cy="{cy:.1f}" r="4">'
            f"<title>{html.escape(tip)}</title></circle></g>"
        )
    parts.append(f'<text x="{pad_l}" y="{height - 8}">oldest</text>')
    parts.append(f'<text x="{width - pad_r}" y="{height - 8}" '
                 f'text-anchor="end">newest</text>')
    parts.append("</svg>")
    return "".join(parts)


def _sparkline_svg(points: list, width: int = 220,
                   height: int = 40) -> str:
    """One sim-time series as a tiny inline polyline."""
    if not points:
        return ""
    ts = [float(p[0]) for p in points]
    vs = [float(p[1]) for p in points]
    t_lo, t_hi = min(ts), max(ts)
    v_lo, v_hi = min(vs), max(vs)
    if t_hi == t_lo:
        t_hi = t_lo + 1.0
    if v_hi == v_lo:
        v_lo, v_hi = v_lo - 0.5, v_hi + 0.5
    coords = " ".join(
        f"{(t - t_lo) / (t_hi - t_lo) * (width - 4) + 2:.1f},"
        f"{(1.0 - (v - v_lo) / (v_hi - v_lo)) * (height - 4) + 2:.1f}"
        for t, v in zip(ts, vs)
    )
    tip = (f"{len(points)} samples · sim-hours {t_lo:.1f}–{t_hi:.1f} · "
           f"range {v_lo:.4g}–{v_hi:.4g}")
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        f"<title>{html.escape(tip)}</title>"
        f'<polyline class="spark-line" points="{coords}"/></svg>'
    )


def _series_section(run: dict) -> Optional[str]:
    """Sim-time sparkline cards for a run with a recorded series blob."""
    series = run.get("series") or {}
    families = series.get("series") or {}
    if not families:
        return None
    cards = []
    for name in sorted(families):
        data = families[name]
        points = data.get("points") or []
        last = data.get("last")
        last_txt = (f"{last[1]:.4g} @ {last[0]:.1f}h"
                    if last else "-")
        cards.append(
            "<div class='spark'>"
            f"<p class='name'>{html.escape(name)}</p>"
            f"<p class='value'>{html.escape(last_txt)}</p>"
            f"{_sparkline_svg(points)}</div>"
        )
    cadence = series.get("cadence_hours")
    caption = (f"sampled every {cadence:g} sim-hour(s), "
               f"reservoir cap {series.get('max_points')}"
               if cadence else "")
    return (
        f"<p class='subtitle'>{html.escape(caption)}</p>"
        "<div class='spark-grid'>" + "".join(cards) + "</div>"
    )


def _percentile_table(run: dict) -> Optional[str]:
    """Latency percentile table of one run's stored histograms."""
    metrics = run.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    if not histograms:
        return None
    rows = []
    for name in sorted(histograms):
        hist = Histogram(name="replay")
        hist.merge_raw(histograms[name])
        summary = hist.summary()
        rows.append([
            name, summary["count"],
            f"{summary['p50']:.6g}", f"{summary['p95']:.6g}",
            f"{summary['p99']:.6g}", f"{summary['max']:.6g}",
        ])
    return render_table(
        ["histogram", "count", "p50", "p95", "p99", "max"], rows
    )


def _counter_delta_table(comparison) -> Optional[str]:
    moved = [c for c in comparison.counters if c.delta not in (None, 0.0)]
    if not moved:
        return None
    rows = [[c.key, _fmt(c.a, 6), _fmt(c.b, 6), _fmt(c.delta, 6)]
            for c in moved]
    return render_table(["counter", "previous", "latest", "delta"], rows)


def _runs_table(points: list[dict], store) -> str:
    summaries = {r["run_id"]: r for r in store.list_runs()}
    cells = []
    for point in reversed(points):  # newest first for the table
        summary = summaries.get(point["run_id"], {})
        cells.append(
            "<tr>"
            f"<td>{html.escape(point['run_id'])}</td>"
            f"<td>{html.escape(_fmt_time(point['started_unix']))}</td>"
            f"<td>{html.escape(point['kind'])}</td>"
            f"<td>{html.escape(point.get('config_hash') or '-')}</td>"
            f"<td>{html.escape(str(summary.get('git_revision') or '-'))}"
            f"{'*' if summary.get('git_dirty') else ''}</td>"
            f"<td>{html.escape(point['outcome'])}</td>"
            f"<td class='num'>{_fmt(point.get('accuracy'))}</td>"
            f"<td class='num'>{_fmt(point.get('wall_seconds'), 3)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>run</th><th>started</th><th>kind</th>"
        "<th>config</th><th>git</th><th>outcome</th>"
        "<th class='num'>accuracy</th><th class='num'>wall s</th>"
        "</tr></thead><tbody>" + "".join(cells) + "</tbody></table>"
    )


def render_history_html(
    store,
    experiment: Optional[str] = None,
    limit: int = 50,
) -> str:
    """The full history report as one HTML document string."""
    experiments = sorted(
        {row["experiment"] for row in store.list_runs(limit=None)
         if row["experiment"]}
    )
    if experiment is not None:
        experiments = [e for e in experiments if e == experiment]
    sections = []
    for name in experiments:
        points = trend_series(store, name, limit=limit)
        section = [f"<h2>{html.escape(name)}</h2>",
                   "<div class='card'>", _trend_svg(points), "</div>"]
        latest = store.get_run(points[-1]["run_id"]) if points else None
        if latest is not None:
            series_cards = _series_section(latest)
            if series_cards:
                section.append("<h3>simulation-time series (latest run)</h3>")
                section.append(series_cards)
            percentiles = _percentile_table(latest)
            if percentiles:
                section.append("<h3>latency percentiles (latest run)</h3>")
                section.append(f"<pre>{html.escape(percentiles)}</pre>")
        if len(points) >= 2:
            comparison = compare_runs(
                store, points[-2]["run_id"], points[-1]["run_id"]
            )
            counters = _counter_delta_table(comparison)
            if counters:
                section.append("<h3>counter deltas (previous → latest)</h3>")
                section.append(f"<pre>{html.escape(counters)}</pre>")
        section.append("<h3>recorded runs</h3>")
        section.append(_runs_table(points, store))
        sections.append("\n".join(section))
    if not sections:
        sections.append("<p class='subtitle'>the run store is empty -- "
                        "record a run first (any repro experiment/sweep "
                        "invocation records by default)</p>")
    total = store.count_runs()
    meta = {
        "generated_unix": time.time(),
        "runstore": str(store.path),
        "total_runs": total,
    }
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro run history</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>Run history</h1>
<p class="subtitle">{html.escape(str(store.path))} ·
{total} recorded run(s) · generated {_fmt_time(meta['generated_unix'])}</p>
{"".join(sections)}
<script type="application/json" id="history-meta">
{html.escape(json.dumps(meta))}
</script>
</body>
</html>
"""


def write_history_html(
    path: PathLike,
    store,
    experiment: Optional[str] = None,
    limit: int = 50,
) -> Path:
    """Write the history report to ``path``; returns the resolved path."""
    target = Path(path)
    target.write_text(render_history_html(store, experiment=experiment,
                                          limit=limit))
    return target
