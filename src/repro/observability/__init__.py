"""Observability: structured logging, tracing, metrics, run manifests.

The measurement layer under every other subsystem:

* :mod:`repro.observability.log` -- structured key=value / JSON event
  logging, switched by the ``REPRO_LOG`` environment variable;
* :mod:`repro.observability.trace` -- context-manager spans with nested
  wall-clock timing (``REPRO_TRACE=1`` or the CLI's ``--trace``);
* :mod:`repro.observability.metrics` -- a process-global registry of
  counters, gauges and percentile-summarised histograms;
* :mod:`repro.observability.manifest` -- self-describing run manifests
  (version, seed, config, span tree, metrics snapshot) embedded in
  every archived experiment;
* :mod:`repro.observability.export` -- JSON and Prometheus-text
  exporters over the registry and span tree;
* :mod:`repro.observability.profile` -- wall-time attribution: roll a
  span forest up into a per-stage self-vs-children table (``repro
  profile``);
* :mod:`repro.observability.timeline` -- Chrome Trace Event Format
  export for Perfetto / ``chrome://tracing``;
* :mod:`repro.observability.timeseries` -- sim-clock-keyed time series
  and the fleet flight recorder (``repro fleet ... --series``):
  bounded-reservoir gauges/rates sampled on the simulated clock,
  bit-identical between the reference and bulk churn engines;
* :mod:`repro.observability.benchdiff` -- benchmark-suite diffing and
  the CI regression gate (``repro bench diff``);
* :mod:`repro.observability.progress` -- live progress telemetry: a
  structured event stream (phase / seed_done / operational events)
  rendered as a TTY status line or JSONL (``--progress``);
* :mod:`repro.observability.runstore` -- the durable sqlite run
  database every CLI invocation records into (``repro runs ...``);
* :mod:`repro.observability.analytics` -- cross-run statistics:
  bootstrap/rank-test comparisons and trend series over the run store;
* :mod:`repro.observability.history` -- the self-contained HTML
  history report (``repro report --history``).

Conventions (see ``docs/observability.md``): span names are
``layer.stage`` (``experiment``, ``phase.measurement``,
``sensor.capture``); counters end in ``_total``; histograms name their
unit (``capture_latency_seconds``, ``readout_skew_ps``).
"""

from __future__ import annotations

from repro.observability import (
    analytics,
    benchdiff,
    history,
    profile,
    progress,
    runstore,
    timeline,
    timeseries,
    trace,
)
from repro.observability.export import (
    metrics_to_dict,
    to_prometheus_text,
    write_metrics_json,
    write_prometheus_text,
    write_spans_jsonl,
)
from repro.observability.log import StructuredLogger, get_logger
from repro.observability.manifest import (
    RunManifest,
    build_manifest,
    diff_manifests,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    registry,
)
from repro.observability.trace import Span, render_tree, span

__all__ = [
    "trace",
    "profile",
    "timeline",
    "timeseries",
    "benchdiff",
    "progress",
    "runstore",
    "analytics",
    "history",
    "span",
    "Span",
    "render_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "get_registry",
    "StructuredLogger",
    "get_logger",
    "RunManifest",
    "build_manifest",
    "diff_manifests",
    "metrics_to_dict",
    "write_metrics_json",
    "write_spans_jsonl",
    "to_prometheus_text",
    "write_prometheus_text",
]
