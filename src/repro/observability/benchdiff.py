"""Benchmark suite comparison: diff two BENCH_*.json files, gate on
regressions.

The repo's benchmark suites (``BENCH_perf.json``,
``BENCH_observability.json``) are nested JSON documents of numbers.
This module flattens two of them to dotted keys, classifies each key's
direction from its name (``*_seconds*`` regress upward, ``*speedup*``/
``*_per_second`` regress downward, identity keys like ``cpu_count``
are informational), and reports per-key deltas.  With a gate
percentage, any key that regressed past the threshold fails the
comparison -- ``repro bench diff OLD NEW --gate 80`` is the CI step
that stops a silent kernel regression from landing.

The gate is meant to be loose in CI: absolute seconds differ several-
fold across runner hardware, so the threshold must only catch
catastrophic regressions (a vectorised kernel silently falling back to
its scalar reference is 5-60x, i.e. hundreds of percent).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "BenchDelta",
    "load_suite",
    "flatten_suite",
    "diff_suites",
    "render_deltas",
    "gate_failures",
    "deltas_to_dict",
]

PathLike = Union[str, Path]

#: Key-name fragments marking a metric where *smaller* is better.
_LOWER_IS_BETTER = ("seconds", "_ms", "latency", "overhead")

#: Key-name fragments marking a metric where *larger* is better.
_HIGHER_IS_BETTER = ("speedup", "per_second", "accuracy", "throughput")


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark key compared across two suites."""

    key: str
    old: Optional[float]
    new: Optional[float]
    direction: str  # "lower", "higher", or "info"

    @property
    def change_pct(self) -> Optional[float]:
        """Relative change new vs old, in percent (None if undefined)."""
        if self.old is None or self.new is None or self.old == 0.0:
            return None
        return (self.new - self.old) / abs(self.old) * 100.0

    @property
    def regression_pct(self) -> Optional[float]:
        """How much *worse* the new value is, in percent.

        ``None`` for informational keys, keys missing on either side,
        and improvements; gating compares this against the threshold.
        """
        change = self.change_pct
        if change is None or self.direction == "info":
            return None
        worse = change if self.direction == "lower" else -change
        return worse if worse > 0.0 else None


def classify_key(key: str) -> str:
    """Direction of one dotted benchmark key: lower/higher/info."""
    leaf = key.rsplit(".", 1)[-1].lower()
    if any(fragment in leaf for fragment in _LOWER_IS_BETTER):
        return "lower"
    if any(fragment in leaf for fragment in _HIGHER_IS_BETTER):
        return "higher"
    return "info"


def load_suite(path: PathLike) -> dict:
    """Load one benchmark suite JSON document."""
    target = Path(path)
    if not target.is_file():
        raise ConfigurationError(f"benchmark suite not found: {target}")
    try:
        payload = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"benchmark suite {target} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"benchmark suite {target} must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def flatten_suite(payload: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested suite document, by dotted key.

    Booleans and strings are dropped -- they are identity fields, not
    benchmarks (``bit_identical`` is asserted by the bench itself).
    """
    flat: dict[str, float] = {}
    for key, value in payload.items():
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_suite(value, dotted))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[dotted] = float(value)
    return flat


def diff_suites(old: dict, new: dict) -> list[BenchDelta]:
    """Key-by-key comparison of two suite documents.

    Keys present in only one suite appear with ``None`` on the other
    side (shape drift is visible but never gates).
    """
    flat_old = flatten_suite(old)
    flat_new = flatten_suite(new)
    return [
        BenchDelta(
            key=key,
            old=flat_old.get(key),
            new=flat_new.get(key),
            direction=classify_key(key),
        )
        for key in sorted(set(flat_old) | set(flat_new))
    ]


def gate_failures(
    deltas: list[BenchDelta], gate_pct: float
) -> list[BenchDelta]:
    """The deltas regressing past ``gate_pct`` percent."""
    if gate_pct < 0.0:
        raise ConfigurationError(
            f"gate must be a non-negative percentage, got {gate_pct}"
        )
    return [
        delta for delta in deltas
        if delta.regression_pct is not None
        and delta.regression_pct > gate_pct
    ]


def deltas_to_dict(
    deltas: list[BenchDelta], gate_pct: Optional[float] = None
) -> dict:
    """The comparison as one JSON-ready document (``--json FILE``).

    Per key: both values, the relative change, the direction, the
    regression percentage and -- when a gate is set -- the per-key gate
    verdict.  The top level carries the failure list and overall
    verdict so CI can consume one field.
    """
    failures = (
        {d.key for d in gate_failures(deltas, gate_pct)}
        if gate_pct is not None else set()
    )
    return {
        "gate_pct": gate_pct,
        "verdict": "fail" if failures else "pass",
        "failures": sorted(failures),
        "deltas": [
            {
                "key": delta.key,
                "old": delta.old,
                "new": delta.new,
                "direction": delta.direction,
                "change_pct": delta.change_pct,
                "regression_pct": delta.regression_pct,
                "gate": (
                    None if gate_pct is None
                    else ("fail" if delta.key in failures else "pass")
                ),
            }
            for delta in deltas
        ],
    }


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_deltas(
    deltas: list[BenchDelta], gate_pct: Optional[float] = None
) -> str:
    """ASCII delta table, worst regressions first."""
    ordered = sorted(
        deltas,
        key=lambda d: -(d.regression_pct if d.regression_pct is not None
                        else float("-inf")),
    )
    key_width = max([len(d.key) for d in deltas] + [len("benchmark")])
    lines = [
        f"{'benchmark':<{key_width}}  {'old':>12}  {'new':>12}  "
        f"{'change':>8}  note"
    ]
    lines.append("-" * len(lines[0]))
    for delta in ordered:
        change = delta.change_pct
        change_text = f"{change:+.1f}%" if change is not None else "-"
        if delta.old is None:
            note = "added"
        elif delta.new is None:
            note = "removed"
        elif delta.direction == "info":
            note = "info"
        elif delta.regression_pct is None:
            note = "ok"
        elif gate_pct is not None and delta.regression_pct > gate_pct:
            note = f"REGRESSION (> {gate_pct:g}% gate)"
        else:
            note = "worse"
        lines.append(
            f"{delta.key:<{key_width}}  {_fmt(delta.old):>12}  "
            f"{_fmt(delta.new):>12}  {change_text:>8}  {note}"
        )
    return "\n".join(lines)
