"""Simulation-time telemetry: sim-clock-keyed series and the recorder.

The metrics registry (:mod:`repro.observability.metrics`) measures
*wall-clock* behaviour; a fleet campaign, though, lives on a simulated
clock -- BTI imprint accrues over simulated months, and the questions
worth asking ("what was pool occupancy at hour H?  how much aging debt
was outstanding when the attacker flashed?") are functions of sim
time.  This module keeps those answers:

* :class:`GaugeSeries` / :class:`RateSeries` -- series of ``(sim_hours,
  value)`` samples.  A gauge stores levels (free boards, aging debt); a
  rate series stores *cumulative* totals (lifecycle events, capacity
  drops) so any two retained samples still yield an exact rate over
  their interval, no matter how many intermediate samples were
  downsampled away.

* Bounded, deterministic downsampling.  Sampling at a fixed sim-hour
  cadence over a million-event run would retain tens of thousands of
  points; instead each series keeps at most ``max_points`` samples by
  stride-doubling: when the buffer overflows, every other retained
  point is dropped and only every ``stride``-th *offered* sample is
  appended from then on.  The procedure depends only on the offered
  sample stream -- never on wall time or randomness -- so two runs
  that offer identical samples retain identical points.  That is what
  lets the test suite pin the reference and bulk churn engines
  bit-identical at the JSON level.

* :class:`FlightRecorder` -- the fleet flight recorder.  Churn engines
  feed it grid samples (scalar per event-gap on the reference engine,
  vectorised whole windows on the bulk engine), the event loop feeds it
  tracked-event totals, campaigns feed recovery yield, and registered
  *probes* (per-region aging debt) are evaluated at every churn grid
  time.  ``dump_state``/``merge_state`` mirror the metrics registry's
  lossless-dump contract, idempotence guard included.

Sampling semantics (the cross-engine contract): a sample at grid time
``g`` reflects every churn event with time ``<= g`` and every tracked
(event-loop) mutation that ran strictly before the clock reached
``g``.  The reference engine emits pending grids strictly below an
event's time before processing it and flushes grids ``<= until`` when
an advance ends; the bulk engine computes the same values for a whole
window of grids with ``searchsorted`` bucketing.  Both orderings
produce the same offered stream, so the retained points match bit for
bit.
"""

from __future__ import annotations

import json
import uuid
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_CADENCE_HOURS",
    "DEFAULT_MAX_POINTS",
    "SERIES_POOL_FREE",
    "SERIES_IN_FLIGHT",
    "SERIES_LIFECYCLE",
    "SERIES_DROPPED",
    "SERIES_AGING_DEBT",
    "SERIES_TRACKED",
    "SERIES_RECOVERY_YIELD",
    "SERIES_BOARDS_PROBED",
    "SERIES_FAULTS",
    "SERIES_FAILED_WIPES",
    "GaugeSeries",
    "RateSeries",
    "FlightRecorder",
]

PathLike = Union[str, Path]

#: Default sim-hours between churn grid samples.
DEFAULT_CADENCE_HOURS = 1.0

#: Default retained samples per series; overflow halves the buffer and
#: doubles the sampling stride, so memory stays O(max_points) over
#: arbitrarily long simulations.
DEFAULT_MAX_POINTS = 2048

# The fleet series the recorder maintains.  Names follow the metric
# conventions (dotted layer.measurement, sim-time implied).
SERIES_POOL_FREE = "fleet.pool_free"
SERIES_IN_FLIGHT = "fleet.rentals_in_flight"
SERIES_LIFECYCLE = "fleet.lifecycle_events"
SERIES_DROPPED = "fleet.dropped_arrivals"
SERIES_AGING_DEBT = "fleet.aging_debt_hours"
SERIES_TRACKED = "fleet.tracked_events"
SERIES_RECOVERY_YIELD = "fleet.recovery_yield"
SERIES_BOARDS_PROBED = "fleet.boards_probed"
SERIES_FAULTS = "fleet.faults_injected"
SERIES_FAILED_WIPES = "fleet.failed_wipes"


class GaugeSeries:
    """A level sampled against the sim clock (free boards, debt hours).

    ``points`` is a list of ``[sim_hours, value]`` pairs (plain floats,
    so the series round-trips JSON losslessly).  ``last`` is always the
    most recently *offered* sample, retained or not, so the series'
    final value survives any amount of downsampling.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        if max_points < 2:
            raise ConfigurationError(
                f"series {name!r} needs max_points >= 2, got {max_points}"
            )
        self.name = name
        self.help = help
        self.max_points = int(max_points)
        self.points: list[list[float]] = []
        self.stride = 1
        self.offered = 0
        self.last_t: Optional[float] = None
        self.last_value: Optional[float] = None

    def __len__(self) -> int:
        return len(self.points)

    def observe(self, t: float, value: float) -> None:
        """Offer one sample at sim time ``t`` (must be non-decreasing)."""
        if self.offered % self.stride == 0:
            self.points.append([float(t), float(value)])
            if len(self.points) > self.max_points:
                del self.points[1::2]
                self.stride *= 2
        self.offered += 1
        self.last_t = float(t)
        self.last_value = float(value)

    def observe_many(self, ts, values) -> None:
        """Offer a whole window of samples in one vectorised call.

        Replays exactly the state transitions ``observe`` would make
        sample by sample -- including a mid-window stride doubling --
        so the bulk churn engine's windowed intake retains the same
        points as the reference engine's scalar intake.
        """
        ts = np.asarray(ts, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        n = len(ts)
        if n == 0:
            return
        if len(values) != n:
            raise ConfigurationError(
                f"series {self.name!r}: ts and values must align"
            )
        start = self.offered
        pos = 0
        while pos < n:
            stride = self.stride
            # Next *offered* index at or after start+pos on the stride.
            first = -(-(start + pos) // stride) * stride
            if first >= start + n:
                break
            selected = np.arange(first, start + n, stride)
            # An append that lifts the buffer past max_points triggers
            # a halve; chunk up to that boundary, halve, re-stride.
            room = self.max_points + 1 - len(self.points)
            take = selected[:room] if len(selected) > room else selected
            local = take - start
            self.points.extend(
                np.column_stack((ts[local], values[local])).tolist()
            )
            if len(self.points) > self.max_points:
                del self.points[1::2]
                self.stride *= 2
            pos = int(take[-1]) - start + 1
        self.offered = start + n
        self.last_t = float(ts[-1])
        self.last_value = float(values[-1])

    def to_dict(self) -> dict:
        """JSON-ready dump (also the lossless dump/merge payload)."""
        return {
            "kind": self.kind,
            "help": self.help,
            "max_points": self.max_points,
            "stride": self.stride,
            "offered": self.offered,
            "last": (None if self.last_t is None
                     else [self.last_t, self.last_value]),
            "points": [list(p) for p in self.points],
        }


class RateSeries(GaugeSeries):
    """A cumulative total sampled against the sim clock.

    Stores running totals, not deltas: the rate between any two
    retained samples ``(t0, c0)`` and ``(t1, c1)`` is exactly
    ``(c1 - c0) / (t1 - t0)`` regardless of what downsampling dropped
    in between.
    """

    kind = "rate"


_SERIES_KINDS = {"gauge": GaugeSeries, "rate": RateSeries}


class FlightRecorder:
    """The fleet flight recorder: every sim-time series of one run.

    One recorder instance follows one simulation; the churn engines,
    the event loop and the campaign handlers all write into it, and
    registered probe callbacks (aging debt) are evaluated at every
    churn grid time so engine-owned and simulator-owned series share
    one time base.
    """

    def __init__(self, cadence_hours: float = DEFAULT_CADENCE_HOURS,
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        if cadence_hours <= 0.0:
            raise ConfigurationError(
                f"cadence must be positive, got {cadence_hours}"
            )
        if max_points < 2:
            raise ConfigurationError(
                f"max_points must be >= 2, got {max_points}"
            )
        self.cadence_hours = float(cadence_hours)
        self.max_points = int(max_points)
        self._series: dict[str, GaugeSeries] = {}
        self._probes: list[tuple[str, Callable[[float], float]]] = []
        self._merged_dump_ids: set[str] = set()

    # -- series management --------------------------------------------

    def gauge(self, name: str, help: str = "") -> GaugeSeries:
        """Get or create the gauge series ``name``."""
        return self._get_or_create(name, GaugeSeries, help)

    def rate(self, name: str, help: str = "") -> RateSeries:
        """Get or create the cumulative rate series ``name``."""
        return self._get_or_create(name, RateSeries, help)

    def _get_or_create(self, name, cls, help):
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = cls(
                name, help=help, max_points=self.max_points
            )
        elif type(series) is not cls:
            raise ConfigurationError(
                f"series {name!r} already registered as {series.kind}"
            )
        return series

    @property
    def series(self) -> dict[str, GaugeSeries]:
        """Registered series by name (live view)."""
        return self._series

    def names(self) -> tuple[str, ...]:
        """Every registered series name, sorted."""
        return tuple(sorted(self._series))

    def add_probe(self, name: str,
                  fn: Callable[[float], float], help: str = "") -> None:
        """Register a gauge probe evaluated at every churn grid time."""
        self.gauge(name, help=help)
        self._probes.append((name, fn))

    # -- churn intake (the engines call these) ------------------------

    def churn_sample(self, t: float, free: float, in_flight: float,
                     events: float, drops: float) -> None:
        """One churn grid sample (the reference engine's scalar path)."""
        self.gauge(SERIES_POOL_FREE).observe(t, free)
        self.gauge(SERIES_IN_FLIGHT).observe(t, in_flight)
        self.rate(SERIES_LIFECYCLE).observe(t, events)
        self.rate(SERIES_DROPPED).observe(t, drops)
        for name, fn in self._probes:
            self._series[name].observe(t, float(fn(float(t))))

    def churn_window(self, ts, free, in_flight, events, drops) -> None:
        """A whole window of churn grid samples (the bulk engine's
        vectorised path); sample ordering matches :meth:`churn_sample`
        called once per grid."""
        if len(ts) == 0:
            return
        self.gauge(SERIES_POOL_FREE).observe_many(ts, free)
        self.gauge(SERIES_IN_FLIGHT).observe_many(ts, in_flight)
        self.rate(SERIES_LIFECYCLE).observe_many(ts, events)
        self.rate(SERIES_DROPPED).observe_many(ts, drops)
        if self._probes:
            for t in ts:
                for name, fn in self._probes:
                    self._series[name].observe(float(t), float(fn(float(t))))

    def record_origin(self, boards: float) -> None:
        """The t=0 sample: a full pool, nothing in flight, no events."""
        self.churn_sample(0.0, float(boards), 0.0, 0.0, 0.0)

    # -- event-driven intake ------------------------------------------

    def sample(self, name: str, t: float, value: float,
               help: str = "") -> None:
        """An event-driven gauge sample (recovery yield at a probe)."""
        self.gauge(name, help=help).observe(t, value)

    def sample_rate(self, name: str, t: float, value: float,
                    help: str = "") -> None:
        """An event-driven cumulative sample (boards probed so far)."""
        self.rate(name, help=help).observe(t, value)

    # -- export / persistence -----------------------------------------

    def to_dict(self) -> dict:
        """The whole recorder as one JSON-ready document."""
        return {
            "version": 1,
            "cadence_hours": self.cadence_hours,
            "max_points": self.max_points,
            "series": {
                name: series.to_dict()
                for name, series in sorted(self._series.items())
            },
        }

    def to_json(self) -> str:
        """Canonical JSON text (the bit-identity surface tests pin)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def save(self, path: PathLike) -> Path:
        """Write the series document to ``path``; returns the path."""
        target = Path(path)
        target.write_text(self.to_json())
        return target

    def dump_state(self) -> dict:
        """Lossless dump for cross-process merging (metrics-registry
        parity: a unique ``dump_id`` guards idempotence)."""
        payload = self.to_dict()
        payload["dump_id"] = uuid.uuid4().hex
        return payload

    def merge_state(self, state: dict) -> bool:
        """Fold a :meth:`dump_state` payload into this recorder.

        A series absent here is adopted wholesale (points, stride,
        offered count, last sample).  A series present on both sides
        merges by time-ordered union of retained points, re-trimmed by
        the same halving rule, with the later ``last`` winning --
        enough for a parent process to aggregate shard recorders.  A
        dump already merged (same ``dump_id``) is skipped and ``False``
        returned.
        """
        dump_id = state.get("dump_id")
        if dump_id is not None and dump_id in self._merged_dump_ids:
            return False
        for name, payload in state.get("series", {}).items():
            kind = payload.get("kind", "gauge")
            cls = _SERIES_KINDS.get(kind)
            if cls is None:
                raise ConfigurationError(
                    f"unknown series kind {kind!r} for {name!r}"
                )
            mine = self._series.get(name)
            if mine is None:
                mine = self._get_or_create(name, cls,
                                           payload.get("help", ""))
                mine.points = [list(p) for p in payload.get("points", [])]
                mine.stride = int(payload.get("stride", 1))
                mine.offered = int(payload.get("offered",
                                               len(mine.points)))
            else:
                merged = sorted(
                    [list(p) for p in mine.points]
                    + [list(p) for p in payload.get("points", [])],
                    key=lambda p: p[0],
                )
                while len(merged) > mine.max_points:
                    del merged[1::2]
                    mine.stride *= 2
                mine.points = merged
                mine.stride = max(mine.stride,
                                  int(payload.get("stride", 1)))
                mine.offered += int(payload.get("offered", 0))
            last = payload.get("last")
            if last is not None and (mine.last_t is None
                                     or last[0] >= mine.last_t):
                mine.last_t = float(last[0])
                mine.last_value = float(last[1])
        if dump_id is not None:
            self._merged_dump_ids.add(dump_id)
        return True
