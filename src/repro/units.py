"""Unit helpers and light-weight unit discipline.

The library uses a fixed set of base units everywhere:

* time during experiments: **hours** (the paper's protocols are phrased in
  hours of conditioning);
* circuit delay: **picoseconds**;
* temperature: **kelvin** internally, with helpers for Celsius;
* power: **watts**.

These helpers centralise the conversions so magic constants do not spread
through the code base.
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600.0
HOURS_PER_SECOND = 1.0 / SECONDS_PER_HOUR

PICOSECONDS_PER_NANOSECOND = 1000.0

ZERO_CELSIUS_IN_KELVIN = 273.15

#: Boltzmann constant in electron-volts per kelvin, used by the Arrhenius
#: temperature-acceleration model.
BOLTZMANN_EV_PER_K = 8.617333262e-5


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return celsius + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return kelvin - ZERO_CELSIUS_IN_KELVIN


def hours_to_seconds(hours: float) -> float:
    """Convert a duration from hours to seconds."""
    return hours * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    """Convert a duration from seconds to hours."""
    return seconds * HOURS_PER_SECOND


def ns_to_ps(nanoseconds: float) -> float:
    """Convert a delay from nanoseconds to picoseconds."""
    return nanoseconds * PICOSECONDS_PER_NANOSECOND


def ps_to_ns(picoseconds: float) -> float:
    """Convert a delay from picoseconds to nanoseconds."""
    return picoseconds / PICOSECONDS_PER_NANOSECOND
