"""ASCII rendering of the paper's figure panels.

Each of Figures 6, 7 and 8 is four panels -- one per route-length class,
sixteen series each, burn-1 in one colour and burn-0 in another.
:func:`render_experiment_panels` reproduces that layout in plain text
from any experiment's series bundle.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import render_series_chart
from repro.analysis.timeseries import SeriesBundle, length_class


def render_experiment_panels(
    bundle: SeriesBundle,
    title: str,
    stress_change_hour: Optional[float] = None,
    width: int = 78,
    height: int = 14,
) -> str:
    """One chart per route-length class, longest last (as in the paper)."""
    groups: dict[float, list] = {}
    for series in bundle:
        groups.setdefault(length_class(series.nominal_delay_ps), []).append(
            series
        )
    panels = []
    for length in sorted(groups):
        label = (
            f"{title} -- ({chr(ord('a') + len(panels))}) "
            f"{length:.0f} ps routes"
        )
        panels.append(
            render_series_chart(
                groups[length],
                width=width,
                height=height,
                title=label,
                stress_change_hour=stress_change_hour,
            )
        )
    return "\n\n".join(panels)
