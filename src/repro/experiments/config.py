"""Experiment parameterisations.

``paper()`` constructors reproduce the published protocols exactly
(16 routes per length, 200-hour periods, hourly measurement);
``quick()`` constructors shrink routes and hours for tests and smoke
runs while keeping every phase of the protocol intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

#: The paper's four studied route-delay classes, ps.
PAPER_LENGTH_CLASSES = (1000.0, 2000.0, 5000.0, 10000.0)


def _expand_lengths(lengths: tuple, per_length: int) -> tuple:
    return tuple(
        float(length) for length in lengths for _ in range(per_length)
    )


@dataclass(frozen=True)
class Experiment1Config:
    """Experiment 1 (lab): burn-in then recovery on a new ZCU102."""

    length_classes: tuple = PAPER_LENGTH_CLASSES
    routes_per_length: int = 16
    burn_hours: int = 200
    recovery_hours: int = 200
    oven_celsius: float = 60.0
    measure_every_hours: float = 1.0
    heater_dsps: int = 1150
    seed: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.routes_per_length <= 0:
            raise ConfigurationError("routes_per_length must be positive")
        if self.burn_hours <= 0 or self.recovery_hours < 0:
            raise ConfigurationError("periods must be positive")

    @property
    def route_lengths(self) -> tuple:
        """The full per-route length list the config expands to."""
        return _expand_lengths(self.length_classes, self.routes_per_length)

    @classmethod
    def paper(cls, seed: int = 1) -> "Experiment1Config":
        """The published protocol's parameterisation."""
        return cls(seed=seed)

    @classmethod
    def quick(cls, seed: int = 1) -> "Experiment1Config":
        """A shrunken configuration for tests and smoke runs."""
        return cls(
            routes_per_length=2,
            burn_hours=40,
            recovery_hours=40,
            measure_every_hours=4.0,
            heater_dsps=64,
            seed=seed,
        )


@dataclass(frozen=True)
class Experiment2Config:
    """Experiment 2 (cloud): Threat Model 1 on an aged F1 device.

    ``device_age_mean_hours`` sets the fleet's effective prior wear; the
    paper's devices carry years of deployment (the default), while the
    quick configuration uses lightly-worn devices so the shortened burn
    still produces a classifiable signal.
    """

    length_classes: tuple = PAPER_LENGTH_CLASSES
    routes_per_length: int = 16
    burn_hours: int = 200
    measure_every_hours: float = 1.0
    heater_dsps: int = 3896
    region: str = "eu-west-2"
    fleet_size: int = 4
    device_age_mean_hours: float = 4000.0
    seed: Optional[int] = 2

    @property
    def route_lengths(self) -> tuple:
        """The full per-route length list the config expands to."""
        return _expand_lengths(self.length_classes, self.routes_per_length)

    @classmethod
    def paper(cls, seed: int = 2) -> "Experiment2Config":
        """The published protocol's parameterisation."""
        return cls(seed=seed)

    @classmethod
    def quick(cls, seed: int = 2) -> "Experiment2Config":
        """A shrunken configuration for tests and smoke runs."""
        return cls(
            routes_per_length=2,
            burn_hours=60,
            measure_every_hours=4.0,
            heater_dsps=256,
            fleet_size=2,
            device_age_mean_hours=300.0,
            seed=seed,
        )


@dataclass(frozen=True)
class Experiment3Config:
    """Experiment 3 (cloud): Threat Model 2, recovery-only observation."""

    length_classes: tuple = PAPER_LENGTH_CLASSES
    routes_per_length: int = 16
    victim_burn_hours: int = 200
    recovery_hours: int = 25
    conditioned_to: int = 0
    heater_dsps: int = 3896
    region: str = "eu-west-2"
    fleet_size: int = 3
    device_age_mean_hours: float = 4000.0
    seed: Optional[int] = 3

    def __post_init__(self) -> None:
        if self.conditioned_to not in (0, 1):
            raise ConfigurationError("conditioned_to must be 0 or 1")

    @property
    def route_lengths(self) -> tuple:
        """The full per-route length list the config expands to."""
        return _expand_lengths(self.length_classes, self.routes_per_length)

    @classmethod
    def paper(cls, seed: int = 3) -> "Experiment3Config":
        """The published protocol's parameterisation."""
        return cls(seed=seed)

    @classmethod
    def quick(cls, seed: int = 3) -> "Experiment3Config":
        # The victim keeps the paper's hot (63 W) workload: the junction
        # temperature during the burn is what makes the imprint strong
        # relative to the attacker's own (cold) conditioning imprint.
        """A shrunken configuration for tests and smoke runs."""
        return cls(
            routes_per_length=3,
            victim_burn_hours=100,
            recovery_hours=18,
            fleet_size=2,
            device_age_mean_hours=300.0,
            seed=seed,
        )
