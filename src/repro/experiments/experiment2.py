"""Experiment 2 (Section 6.2, Figure 7): Threat Model 1 on the cloud.

The attacker publishes a (maliciously constructed) AFI whose routes hold
the Type A secret X, rents an aged F1 instance in eu-west-2, and
interleaves burn-in with measurement for 200 hours.  Compared to the lab
run the device is years old and the ambient is uncontrolled, so the
observed magnitudes are roughly an order of magnitude smaller and
noisier -- but X remains recoverable from the drift signs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.kernel_regression import local_linear_smooth
from repro.analysis.timeseries import SeriesBundle, length_class
from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.marketplace import Marketplace
from repro.cloud.provider import CloudProvider
from repro.core.metrics import RecoveryScore, grouped_accuracy, score_recovery
from repro.core.threat_model1 import ThreatModel1Attack
from repro.designs import build_route_bank, build_target_design
from repro.experiments.config import Experiment2Config
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.observability.progress import note_phase
from repro.rng import RngFactory

_log = get_logger("experiments.exp2")


@dataclass(frozen=True)
class Experiment2Result:
    """Everything Figure 7 plots, plus recovery scoring."""

    config: Experiment2Config
    bundle: SeriesBundle
    burn_values: tuple
    recovery_score: RecoveryScore
    #: Per-route health from the attack (ok / degraded / unrecovered).
    route_status: dict = None

    def magnitude_band(self, length_ps: float) -> tuple[float, float]:
        """(min, max) |smoothed delta-ps| at the end of burn-in per class."""
        magnitudes = []
        for series in self.bundle:
            if length_class(series.nominal_delay_ps) != length_ps:
                continue
            smoothed = local_linear_smooth(
                series.hours_array, series.centered, bandwidth=25.0
            )
            magnitudes.append(abs(float(smoothed[-1])))
        if not magnitudes:
            raise ValueError(f"no routes of length {length_ps}")
        return min(magnitudes), max(magnitudes)

    def accuracy_by_length(self) -> dict[float, float]:
        """Recovery accuracy per route-length class."""
        groups = {
            s.route_name: length_class(s.nominal_delay_ps) for s in self.bundle
        }
        return grouped_accuracy(self.recovery_score, groups)


def run_experiment2(
    config: Optional[Experiment2Config] = None,
) -> Experiment2Result:
    """Run the full Experiment 2 protocol on the simulated cloud."""
    config = config or Experiment2Config.paper()
    rng = RngFactory(config.seed)

    with trace.span(
        "experiment", experiment="exp2", seed=config.seed,
        routes=len(config.route_lengths),
    ) as root:
        provider = CloudProvider(seed=rng.stream("provider"))
        fleet = build_fleet(
            VIRTEX_ULTRASCALE_PLUS,
            size=config.fleet_size,
            wear=cloud_wear_profile(config.device_age_mean_hours),
            seed=rng.stream("fleet"),
        )
        provider.create_region(config.region, fleet)
        marketplace = Marketplace()

        # The attacker authors the AFI, so they know its skeleton and can
        # leave the sensing region uninitialised (Threat Model 1's setting).
        note_phase("exp2.build_designs",
                   routes=len(config.route_lengths))
        with trace.span("experiment.build_designs"):
            grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
            routes = build_route_bank(grid, config.route_lengths)
            burn_values = tuple(
                int(b)
                for b in rng.stream("burn-values").integers(0, 2, len(routes))
            )
            target = build_target_design(
                VIRTEX_ULTRASCALE_PLUS,
                routes,
                burn_values,
                heater_dsps=config.heater_dsps,
                name="marketplace-accelerator",
            )
        listing = marketplace.publish(
            target.bitstream,
            publisher="attacker-shell-co",
            description="FMA acceleration library",
            public_skeleton=True,
        )

        attack = ThreatModel1Attack(
            provider=provider,
            marketplace=marketplace,
            afi_id=listing.afi_id,
            region=config.region,
            seed=rng.stream("sensors"),
        )
        note_phase("exp2.attack", burn_hours=config.burn_hours)
        with trace.span("experiment.attack", burn_hours=config.burn_hours):
            result = attack.run(
                burn_hours=config.burn_hours,
                measure_every_hours=config.measure_every_hours,
            )

        bundle = result.bundle
        truth = {
            route.name: value for route, value in zip(routes, burn_values)
        }
        for name, series in bundle.series.items():
            series.burn_value = truth[name]
        score = score_recovery(result.recovered_bits, truth)
        root.set(accuracy=round(score.accuracy, 4))
    registry.counter("experiments_total", "experiment runs completed").inc()
    registry.gauge(
        "recovery_accuracy", "bit-recovery accuracy of the last run"
    ).set(score.accuracy)
    _log.info("experiment_done", experiment="exp2", seed=config.seed,
              accuracy=round(score.accuracy, 4))
    return Experiment2Result(
        config=config,
        bundle=bundle,
        burn_values=burn_values,
        recovery_score=score,
        route_status=dict(result.route_status),
    )
