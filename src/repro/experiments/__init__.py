"""Experiment drivers: the paper's evaluation, end to end.

* :mod:`repro.experiments.experiment1` -- Figure 6: lab burn-in and
  recovery on a factory-new ZCU102 at 60 C;
* :mod:`repro.experiments.experiment2` -- Figure 7: Threat Model 1 on
  the cloud platform (aged device, marketplace AFI);
* :mod:`repro.experiments.experiment3` -- Figure 8: Threat Model 2 on
  the cloud platform (recovery-only observation);
* :mod:`repro.experiments.figures` -- ASCII rendering of the figure
  panels;
* :mod:`repro.experiments.config` -- full-paper and quick-run
  parameterisations.

Each driver returns a result object carrying the raw series bundle, the
oracle burn values, and summary statistics that EXPERIMENTS.md compares
against the published numbers.
"""

from repro.experiments.config import (
    Experiment1Config,
    Experiment2Config,
    Experiment3Config,
)
from repro.experiments.experiment1 import Experiment1Result, run_experiment1
from repro.experiments.experiment2 import Experiment2Result, run_experiment2
from repro.experiments.experiment3 import Experiment3Result, run_experiment3
from repro.experiments.figures import render_experiment_panels

__all__ = [
    "Experiment1Config",
    "Experiment1Result",
    "Experiment2Config",
    "Experiment2Result",
    "Experiment3Config",
    "Experiment3Result",
    "render_experiment_panels",
    "run_experiment1",
    "run_experiment2",
    "run_experiment3",
]
