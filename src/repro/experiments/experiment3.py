"""Experiment 3 (Section 6.3, Figure 8): Threat Model 2 on the cloud.

Timeline:

* hours [0, 200): a non-malicious victim rents an F1 instance, loads a
  design whose routes hold the runtime secret X, and computes.  The
  attacker observes nothing and never touches the board.
* hour 200: the victim releases the instance; the provider wipes it.
* hours (200, 225]: the attacker flash-acquires the region, replays
  a-priori theta_init values (calibrated earlier on a board they own),
  and alternates Measurement with Condition-to-0, watching for the
  burn-1 recovery transient.

The recorded series start at hour 200 -- "we have no data about the
FPGA before that point".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.timeseries import SeriesBundle, length_class
from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.provider import CloudProvider
from repro.core.metrics import RecoveryScore, grouped_accuracy, score_recovery
from repro.core.phases import CalibrationPhase
from repro.core.threat_model2 import ThreatModel2Attack
from repro.designs import build_measure_design, build_route_bank, build_target_design
from repro.experiments.config import Experiment3Config
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.observability.progress import note_phase
from repro.reliability.retry import retry_call
from repro.rng import RngFactory

_log = get_logger("experiments.exp3")


@dataclass(frozen=True)
class Experiment3Result:
    """Everything Figure 8 plots, plus recovery scoring."""

    config: Experiment3Config
    bundle: SeriesBundle
    burn_values: tuple
    recovery_score: RecoveryScore
    devices_probed: int
    #: Per-route health from the attack (ok / degraded / unrecovered).
    route_status: dict = None

    def accuracy_by_length(self) -> dict[float, float]:
        """Recovery accuracy per route-length class."""
        groups = {
            s.route_name: length_class(s.nominal_delay_ps) for s in self.bundle
        }
        return grouped_accuracy(self.recovery_score, groups)


def run_experiment3(
    config: Optional[Experiment3Config] = None,
) -> Experiment3Result:
    """Run the full Experiment 3 protocol on the simulated cloud."""
    config = config or Experiment3Config.paper()
    rng = RngFactory(config.seed)

    with trace.span(
        "experiment", experiment="exp3", seed=config.seed,
        routes=len(config.route_lengths),
    ) as root:
        provider = CloudProvider(seed=rng.stream("provider"))
        fleet = build_fleet(
            VIRTEX_ULTRASCALE_PLUS,
            size=config.fleet_size,
            wear=cloud_wear_profile(config.device_age_mean_hours),
            seed=rng.stream("fleet"),
        )
        provider.create_region(config.region, fleet)

        with trace.span("experiment.build_designs"):
            grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
            routes = build_route_bank(grid, config.route_lengths)
            burn_values = tuple(
                int(b)
                for b in rng.stream("burn-values").integers(0, 2, len(routes))
            )
            victim_design = build_target_design(
                VIRTEX_ULTRASCALE_PLUS,
                routes,
                burn_values,
                heater_dsps=config.heater_dsps,
                name="victim-workload",
            )
            measure_design = build_measure_design(
                VIRTEX_ULTRASCALE_PLUS, routes
            )

        # --- Attacker's prior calibration, on a board they rent themselves
        # (theta_init transfers across boards of the same part).
        calibration_instance = retry_call(
            provider.rent, config.region, "attacker-calib",
            label="cloud.rent",
        )
        calibration = CalibrationPhase(
            measure_design, seed=rng.stream("calib")
        )
        session = calibration.run(calibration_instance)
        theta_init = dict(session.theta_init)
        provider.release(calibration_instance)

        # --- Victim period: unobserved 200-hour burn.
        note_phase("exp3.victim_burn", hours=config.victim_burn_hours)
        with trace.span(
            "experiment.victim_burn", hours=config.victim_burn_hours
        ):
            victim = retry_call(provider.rent, config.region, "victim",
                                label="cloud.rent")
            retry_call(victim.load_image, victim_design.bitstream,
                       label="exp3.victim_load")
            for _ in range(config.victim_burn_hours):
                provider.advance(1.0)
            provider.release(victim)  # the provider wipes the board here

        # --- Attack period.
        attack = ThreatModel2Attack(
            provider=provider,
            region=config.region,
            routes=routes,
            theta_init=theta_init,
            conditioned_to=config.conditioned_to,
            seed=config.seed,
        )
        note_phase("exp3.attack", recovery_hours=config.recovery_hours)
        with trace.span(
            "experiment.attack", recovery_hours=config.recovery_hours
        ):
            result = attack.run(recovery_hours=config.recovery_hours)

        truth = {
            route.name: value for route, value in zip(routes, burn_values)
        }
        for name, series in result.bundle.series.items():
            series.burn_value = truth[name]
        score = score_recovery(result.recovered_bits, truth)
        root.set(accuracy=round(score.accuracy, 4),
                 devices_probed=result.devices_probed)
    registry.counter("experiments_total", "experiment runs completed").inc()
    registry.gauge(
        "recovery_accuracy", "bit-recovery accuracy of the last run"
    ).set(score.accuracy)
    _log.info("experiment_done", experiment="exp3", seed=config.seed,
              accuracy=round(score.accuracy, 4),
              devices_probed=result.devices_probed)
    return Experiment3Result(
        config=config,
        bundle=result.bundle,
        burn_values=burn_values,
        recovery_score=score,
        devices_probed=result.devices_probed,
        route_status=dict(result.route_status),
    )
