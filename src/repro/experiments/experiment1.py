"""Experiment 1 (Section 6.1, Figure 6): lab burn-in and recovery.

A factory-new ZCU102 in a 60 C oven.  Hour 0: calibration.  Hours
[0, 200): hourly Condition(X)/Measurement cycles.  Hours [200, 400):
the same with the complemented values (X-bar), inducing recovery.

The result carries the full series bundle plus the summary statistics
the paper reports: the per-length delta-ps magnitude band at the end of
burn-in, and the recovery zero-crossing time of the burn-1 routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.kernel_regression import local_linear_smooth
from repro.analysis.timeseries import SeriesBundle, length_class
from repro.core.bench import LabBench
from repro.core.classify import BurnTrendClassifier
from repro.core.metrics import RecoveryScore, score_recovery
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import build_measure_design, build_route_bank, build_target_design
from repro.experiments.config import Experiment1Config
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.fabric.thermal import OvenAmbient
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.observability.progress import note_phase
from repro.physics.aging import NEW_PART
from repro.rng import RngFactory

_log = get_logger("experiments.exp1")


@dataclass(frozen=True)
class Experiment1Result:
    """Everything Figure 6 plots, plus derived statistics."""

    config: Experiment1Config
    bundle: SeriesBundle
    burn_values: tuple
    stress_change_hour: float
    recovery_score: RecoveryScore

    @property
    def route_status(self) -> dict:
        """Per-route recovery status.

        Experiment 1 runs on an undisturbed lab bench, so every route
        with enough measurements classifies; a route is only
        ``"unrecovered"`` if its series came back too short to feature
        (possible under fault injection).
        """
        return {
            name: ("recovered" if len(series) >= 4 else "unrecovered")
            for name, series in self.bundle.series.items()
        }

    def magnitude_band(self, length_ps: float) -> tuple[float, float]:
        """(min, max) |smoothed delta-ps| at the end of burn-in, over the
        routes of one length class -- the numbers quoted per panel."""
        magnitudes = []
        for series in self.bundle:
            if length_class(series.nominal_delay_ps) != length_ps:
                continue
            burn = series.window(0.0, self.stress_change_hour)
            smoothed = local_linear_smooth(
                burn.hours_array, burn.centered, bandwidth=20.0
            )
            magnitudes.append(abs(float(smoothed[-1])))
        if not magnitudes:
            raise ValueError(f"no routes of length {length_ps}")
        return min(magnitudes), max(magnitudes)

    def recovery_crossing_hours(self) -> list[float]:
        """Hours after the stress change at which each burn-1 route's
        smoothed series crosses zero (the paper: 30-50 hours)."""
        crossings = []
        for series in self.bundle:
            if series.burn_value != 1:
                continue
            recovery = series.window(
                self.stress_change_hour, float(series.hours_array[-1])
            )
            if len(recovery) < 4:
                continue
            smoothed = local_linear_smooth(
                recovery.hours_array,
                recovery.raw_array - series.raw_array[0],
                bandwidth=15.0,
            )
            below = np.nonzero(smoothed <= 0.0)[0]
            if below.size:
                crossings.append(
                    float(recovery.hours_array[below[0]] - self.stress_change_hour)
                )
        return crossings


def run_experiment1(
    config: Optional[Experiment1Config] = None,
    progress=None,
) -> Experiment1Result:
    """Run the full Experiment 1 protocol and score bit recovery."""
    config = config or Experiment1Config.paper()
    rng = RngFactory(config.seed)

    with trace.span(
        "experiment", experiment="exp1", seed=config.seed,
        routes=len(config.route_lengths),
    ) as root:
        device = FpgaDevice(
            ZYNQ_ULTRASCALE_PLUS, wear=NEW_PART, seed=rng.stream("device")
        )
        bench = LabBench(device, oven=OvenAmbient(config.oven_celsius))

        with trace.span("experiment.build_designs"):
            routes = build_route_bank(device.grid, config.route_lengths)
            burn_values = tuple(
                int(b)
                for b in rng.stream("burn-values").integers(0, 2, len(routes))
            )
            target = build_target_design(
                device.part, routes, burn_values,
                heater_dsps=config.heater_dsps,
            )
            complement = build_target_design(
                device.part,
                routes,
                [1 - b for b in burn_values],
                heater_dsps=config.heater_dsps,
                name="target-complement",
            )
            measure = build_measure_design(device.part, routes)

        protocol = ConditionMeasureProtocol(
            environment=bench,
            target_bitstream=target.bitstream,
            measure_design=measure,
            routes=routes,
            condition_hours_per_cycle=config.measure_every_hours,
        )
        protocol.calibration.seed = rng.stream("sensors")
        protocol.calibrate()

        burn_cycles = int(config.burn_hours / config.measure_every_hours)
        note_phase("exp1.burn", hours=config.burn_hours,
                   cycles=burn_cycles)
        with trace.span("experiment.burn", hours=config.burn_hours):
            protocol.run_cycles(burn_cycles, progress=progress)
        stress_change_hour = protocol._clock

        # Recovery period: condition with the complemented values.
        protocol.target_bitstream = complement.bitstream
        recovery_cycles = int(
            config.recovery_hours / config.measure_every_hours
        )
        if recovery_cycles:
            note_phase("exp1.recovery", hours=config.recovery_hours,
                       cycles=recovery_cycles)
            with trace.span(
                "experiment.recovery", hours=config.recovery_hours
            ):
                protocol.run_cycles(recovery_cycles, progress=progress)

        bundle = protocol.bundle
        for route, value in zip(routes, burn_values):
            bundle.series[route.name].burn_value = value

        note_phase("exp1.classify", routes=len(routes))
        with trace.span("experiment.classify"):
            classifier = BurnTrendClassifier()
            burn_window = {
                name: series.window(0.0, stress_change_hour)
                for name, series in bundle.series.items()
            }
            recovered = {
                name: classifier.classify(series)
                for name, series in burn_window.items()
            }
        truth = {
            route.name: value for route, value in zip(routes, burn_values)
        }
        score = score_recovery(recovered, truth)
        root.set(accuracy=round(score.accuracy, 4))
    registry.counter("experiments_total", "experiment runs completed").inc()
    registry.gauge(
        "recovery_accuracy", "bit-recovery accuracy of the last run"
    ).set(score.accuracy)
    _log.info("experiment_done", experiment="exp1", seed=config.seed,
              accuracy=round(score.accuracy, 4))
    return Experiment1Result(
        config=config,
        bundle=bundle,
        burn_values=burn_values,
        stress_change_hour=stress_change_hour,
        recovery_score=score,
    )
