"""Chaos runs: whole experiments under an active fault plan.

The chaos harness answers the robustness question directly: *with a
documented storm of transient failures raining on the pipeline, does
the attack still finish, and how much accuracy does it give up?*  A
:func:`run_chaos` call executes one experiment driver under a fault
plan (by default :func:`default_chaos_plan` -- capacity misses on 15%
of allocations, two scheduled preemptions, occasional evictions,
calibration glitches and a 5% capture drop rate) and reports the
injection ledger, the retries spent recovering, and whether the
recovery accuracy stayed within the documented degradation bound
(:data:`CHAOS_ACCURACY_BOUNDS`).

:func:`run_chaos_sweep` does the same across a Monte Carlo seed set,
re-seeding the plan per experiment seed so sharded (``--jobs N``) and
sequential chaos sweeps agree bit for bit, and composing with the
checkpoint/resume journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.faults import FaultPlan, FaultSpec, fault_plan

__all__ = [
    "DEFAULT_CHAOS_SPECS",
    "CHAOS_ACCURACY_BOUNDS",
    "default_chaos_plan",
    "ChaosReport",
    "run_chaos",
    "run_chaos_sweep",
]

_log = get_logger("reliability.chaos")

#: The committed default storm (also shipped as ``plans/chaos-default
#: .json``): >= 10% transient allocation failures, two scheduled
#: preemptions, and >= 5% dropped captures, per the robustness gate.
DEFAULT_CHAOS_SPECS = {
    "cloud.allocate": FaultSpec(probability=0.15),
    "cloud.preempt": FaultSpec(schedule=(1, 4)),
    "cloud.evict": FaultSpec(probability=0.02),
    "sensor.calibrate": FaultSpec(probability=0.03),
    "sensor.capture": FaultSpec(probability=0.05),
}

#: Documented degradation bounds: minimum recovery accuracy each
#: experiment must keep under the default storm (quick configs).  The
#: clean quick runs sit near 1.0 for exp1/exp2 and above 0.9 for exp3;
#: the storm is allowed to cost a few routes' worth of guesses but not
#: the attack.
CHAOS_ACCURACY_BOUNDS = {
    "exp1": 0.85,
    "exp2": 0.75,
    "exp3": 0.60,
}


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """The default storm as a fresh, seeded plan."""
    return FaultPlan(seed=seed, specs=dict(DEFAULT_CHAOS_SPECS))


def derive_plan_seed(chaos_seed: int, seed: int) -> int:
    """Per-experiment-seed plan seed: deterministic, collision-spread.

    Shared convention with the fleet layer
    (:func:`repro.reliability.fleet_chaos.derive_fleet_plan_seed`): a
    sweep folds each campaign/experiment seed into the plan seed so
    fault streams decorrelate across seeds yet stay reproducible.
    """
    return int(chaos_seed) * 1_000_003 + int(seed)


#: Backwards-compatible private alias (pre-PR-10 name).
_derive_plan_seed = derive_plan_seed


def _chaos_metric(
    experiment: str, quick: bool, overrides: tuple, plan_payload: dict,
    seed: int,
) -> float:
    """Seeded chaos evaluation (module-level: picklable for workers).

    Rebuilds the plan from its serialised form with a per-seed derived
    plan seed, so every experiment seed sees its own -- but always the
    same -- fault sequence regardless of ``jobs``.
    """
    from repro.montecarlo import _experiment_metric

    specs = {
        site: FaultSpec.from_dict(payload)
        for site, payload in plan_payload["specs"].items()
    }
    plan = FaultPlan(
        seed=_derive_plan_seed(plan_payload.get("seed", 0), seed),
        specs=specs,
    )
    with fault_plan(plan):
        return _experiment_metric(experiment, quick, overrides, seed)


@dataclass(frozen=True)
class ChaosReport:
    """What one chaos run did and whether it stayed within bounds."""

    experiment: str
    seed: int
    quick: bool
    accuracy: float
    bound: float
    faults_injected: dict[str, int]
    total_faults: int
    retries: int
    passed: bool

    def __str__(self) -> str:
        ledger = ", ".join(
            f"{site}={count}"
            for site, count in sorted(self.faults_injected.items())
        ) or "none"
        verdict = "within bound" if self.passed else "BELOW BOUND"
        return (
            f"chaos {self.experiment} seed={self.seed}: "
            f"accuracy={self.accuracy:.3f} (bound {self.bound:.2f}, "
            f"{verdict}); faults [{ledger}], retries={self.retries}"
        )


def run_chaos(
    experiment: str,
    quick: bool = True,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    config_overrides: Optional[dict] = None,
) -> ChaosReport:
    """One experiment under a fault storm, with a pass/fail verdict.

    The run must complete without an unhandled exception (transient
    faults are recovered or degraded per-route by the pipeline) and
    keep its recovery accuracy at or above the experiment's
    :data:`CHAOS_ACCURACY_BOUNDS` entry.  ``plan=None`` uses the
    default storm re-seeded per ``seed``.
    """
    from repro.montecarlo import _resolve_experiment

    _resolve_experiment(experiment)
    if plan is None:
        plan = default_chaos_plan()
    overrides = (
        tuple(sorted(config_overrides.items())) if config_overrides else ()
    )
    def _site_counter(site: str):
        return registry.counter(
            "faults_injected_" + site.replace(".", "_") + "_total",
            f"faults injected at site {site}",
        )

    retries_before = registry.counter(
        "retries_total", "transient-error retries performed"
    ).value
    faults_before = {site: _site_counter(site).value for site in plan.specs}
    accuracy = _chaos_metric(
        experiment, quick, overrides, plan.to_dict(), seed
    )
    retries = int(registry.counter(
        "retries_total", "transient-error retries performed"
    ).value - retries_before)
    faults = {
        site: int(_site_counter(site).value - faults_before[site])
        for site in plan.specs
    }
    faults = {site: count for site, count in faults.items() if count}
    bound = CHAOS_ACCURACY_BOUNDS.get(experiment, 0.5)
    report = ChaosReport(
        experiment=experiment,
        seed=int(seed),
        quick=bool(quick),
        accuracy=float(accuracy),
        bound=bound,
        faults_injected=faults,
        total_faults=sum(faults.values()),
        retries=retries,
        passed=bool(accuracy >= bound),
    )
    _log.info("chaos_run_done", experiment=experiment, seed=int(seed),
              accuracy=round(report.accuracy, 4), faults=report.total_faults,
              retries=report.retries, passed=report.passed)
    return report


def run_chaos_sweep(
    experiment: str,
    seeds: Sequence[int],
    quick: bool = True,
    jobs: Union[int, str] = 1,
    plan: Optional[FaultPlan] = None,
    config_overrides: Optional[dict] = None,
    journal_path=None,
):
    """A Monte Carlo sweep with the fault storm active in every seed.

    Returns the :class:`~repro.montecarlo.MonteCarloResult` of recovery
    accuracy under chaos.  Composes with checkpoint/resume exactly like
    a plain sweep (``journal_path``); the plan travels to workers in
    serialised form and is re-seeded per experiment seed, so the result
    is independent of ``jobs`` and of where a resume picked up.
    """
    from repro.montecarlo import _resolve_experiment, run_monte_carlo

    _resolve_experiment(experiment)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if plan is None:
        plan = default_chaos_plan()
    overrides = (
        tuple(sorted(config_overrides.items())) if config_overrides else ()
    )
    journal = None
    if journal_path is not None:
        from repro.reliability.checkpoint import SweepJournal

        journal = SweepJournal.load(journal_path, context={
            "experiment": experiment,
            "quick": bool(quick),
            "overrides": [list(pair) for pair in overrides],
            "seeds": [int(s) for s in seeds],
            "metric": "chaos_recovery_accuracy",
            "chaos_plan": plan.to_dict(),
        })
    metric = partial(
        _chaos_metric, experiment, quick, overrides, plan.to_dict()
    )
    return run_monte_carlo(
        metric, seeds,
        metric_name=f"{experiment} chaos recovery accuracy",
        jobs=jobs, journal=journal,
    )
