"""Deterministic provider chaos for the event-driven fleet.

PR 5's :class:`~repro.reliability.faults.FaultPlan` stops at the eager
per-experiment paths; this module carries the same discipline into the
million-event campaigns of :mod:`repro.cloud.campaigns`.  A
:class:`FleetFaultPlan` bundles the provider failure modes the paper's
threat model cares about:

* **failed / partial wipes** -- the WIPE event fires but the board's
  remanence state survives, or only a random subset of routes is
  scrubbed (the paper-relevant fault: Pentimento's recovery story is
  exactly what imperfect scrubbing leaks);
* **region outages** -- capacity collapses for a window, queued RENTs
  retry under the existing :class:`~repro.reliability.retry.RetryPolicy`
  backoff (re-priced in simulated hours) or the campaign degrades;
* **preemption storms** -- spot pressure reclaims victim tenancies at a
  chosen instant;
* **device retirement** -- hard failures permanently remove boards from
  the free pool (mass retirement compacts the pool);
* **thermal excursions** -- ambient spikes replayed through the lazy
  region timeline via :class:`ExcursionAmbient`.

Engine invariance is the design constraint that shapes everything here:
the same plan must produce bit-identical campaigns across
``_ReferenceChurn`` and ``_BulkChurn``, every ``batch_hours``, and lazy
vs. eager aging.  Two rules enforce it:

1. Churn-affecting faults (outage arrival drops, storm truncation of
   in-flight rentals) are pure array transforms applied **once** to the
   pre-drawn :class:`~repro.cloud.campaigns.ChurnTrace`, before either
   engine sees it -- both engines then replay the identical trace.
2. Tracked-event faults draw randomness from RNG streams keyed by
   *event identity* (``fleet.wipe#victim3``), never by engine iteration
   order, so the draw is the same no matter which engine, batch size,
   or dispatch interleaving visits the site.

Like :func:`~repro.reliability.faults.maybe_inject`, the no-plan fast
path is a single ``None`` check at each site -- BENCH_fleet's hot loops
pay one predicate and nothing else.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, PersistenceError
from repro.observability import progress as _progress
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.rng import RngFactory

__all__ = [
    "FLEET_FAULT_SITES",
    "WipeFaultSpec",
    "OutageWindow",
    "PreemptionStorm",
    "RetirementWave",
    "ThermalExcursion",
    "ExcursionAmbient",
    "FleetFaultPlan",
    "load_fleet_fault_plan",
    "default_fleet_chaos_plan",
    "derive_fleet_plan_seed",
    "note_fleet_fault",
]

_log = get_logger("reliability.fleet_chaos")

PathLike = Union[str, Path]

#: Plan file schema marker.
FLEET_PLAN_SCHEMA = 1

#: The fleet fault sites, with what each injection models.
FLEET_FAULT_SITES = (
    "fleet.wipe_fail",     # WIPE fires, remanence state untouched
    "fleet.wipe_partial",  # WIPE scrubs only a random route subset
    "fleet.outage",        # region dark: a tracked RENT is refused
    "fleet.preempt",       # storm reclaims a victim tenancy
    "fleet.retire",        # board leaves the free pool permanently
    "fleet.thermal",       # ambient excursion applied to the region
)


def _require_number(payload: dict, key: str, what: str) -> float:
    """Fetch a numeric field, naming the offending key on failure."""
    if key not in payload:
        raise ConfigurationError(f"{what} is missing required key {key!r}")
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{what} key {key!r} must be a number, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class WipeFaultSpec:
    """How release-time wipes fail.

    Per victim release one uniform is drawn (keyed to the victim, not
    the engine's iteration order): with ``fail_probability`` the wipe
    silently does nothing, with ``partial_probability`` only a random
    ``scrub_fraction`` of routes is actually cleared and the rest stay
    resident as a residue design.  ``max_fires`` caps total wipe faults.
    """

    fail_probability: float = 0.0
    partial_probability: float = 0.0
    scrub_fraction: float = 0.5
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("fail_probability", "partial_probability",
                     "scrub_fraction"):
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise ConfigurationError(
                    f"wipe {name} must be in [0, 1], got {value}"
                )
        if self.fail_probability + self.partial_probability > 1.0:
            raise ConfigurationError(
                "wipe fail_probability + partial_probability must not "
                f"exceed 1, got {self.fail_probability} + "
                f"{self.partial_probability}"
            )
        if self.max_fires is not None and int(self.max_fires) < 0:
            raise ConfigurationError(
                f"wipe max_fires must be >= 0, got {self.max_fires}"
            )

    def to_dict(self) -> dict:
        payload: dict = {
            "fail_probability": self.fail_probability,
            "partial_probability": self.partial_probability,
            "scrub_fraction": self.scrub_fraction,
        }
        if self.max_fires is not None:
            payload["max_fires"] = int(self.max_fires)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "WipeFaultSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"wipe spec must be an object, got {payload!r}"
            )
        known = {"fail_probability", "partial_probability",
                 "scrub_fraction", "max_fires"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(f"wipe spec has unknown key {key!r}")
        return cls(
            fail_probability=float(payload.get("fail_probability", 0.0)),
            partial_probability=float(
                payload.get("partial_probability", 0.0)
            ),
            scrub_fraction=float(payload.get("scrub_fraction", 0.5)),
            max_fires=payload.get("max_fires"),
        )


@dataclass(frozen=True)
class OutageWindow:
    """A region goes dark for ``[start_hours, start_hours + duration)``.

    Tracked RENTs inside the window are refused (and retried under the
    active :class:`~repro.reliability.retry.RetryPolicy`); with
    ``drop_churn`` background arrivals inside the window never happen
    at all -- the provider's admission queue simply rejects them.
    """

    start_hours: float
    duration_hours: float
    drop_churn: bool = True

    def __post_init__(self) -> None:
        if self.start_hours < 0.0:
            raise ConfigurationError(
                f"outage start_hours must be >= 0, got {self.start_hours}"
            )
        if self.duration_hours <= 0.0:
            raise ConfigurationError(
                f"outage duration_hours must be > 0, got "
                f"{self.duration_hours}"
            )

    @property
    def end_hours(self) -> float:
        return self.start_hours + self.duration_hours

    def to_dict(self) -> dict:
        return {
            "start_hours": self.start_hours,
            "duration_hours": self.duration_hours,
            "drop_churn": bool(self.drop_churn),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OutageWindow":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"outage window must be an object, got {payload!r}"
            )
        known = {"start_hours", "duration_hours", "drop_churn"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(
                    f"outage window has unknown key {key!r}"
                )
        return cls(
            start_hours=_require_number(payload, "start_hours", "outage"),
            duration_hours=_require_number(
                payload, "duration_hours", "outage"
            ),
            drop_churn=bool(payload.get("drop_churn", True)),
        )


@dataclass(frozen=True)
class PreemptionStorm:
    """Spot pressure reclaims victim tenancies at ``start_hours``.

    Each live victim is preempted independently with ``probability``
    (keyed draw per victim).  With ``cut_churn`` background rentals
    spanning the storm instant are truncated to end there, modelling
    fleet-wide reclamation.
    """

    start_hours: float
    probability: float = 1.0
    cut_churn: bool = True

    def __post_init__(self) -> None:
        if self.start_hours < 0.0:
            raise ConfigurationError(
                f"storm start_hours must be >= 0, got {self.start_hours}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"storm probability must be in [0, 1], got "
                f"{self.probability}"
            )

    def to_dict(self) -> dict:
        return {
            "start_hours": self.start_hours,
            "probability": self.probability,
            "cut_churn": bool(self.cut_churn),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PreemptionStorm":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"preemption storm must be an object, got {payload!r}"
            )
        known = {"start_hours", "probability", "cut_churn"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(
                    f"preemption storm has unknown key {key!r}"
                )
        return cls(
            start_hours=_require_number(payload, "start_hours", "storm"),
            probability=float(payload.get("probability", 1.0)),
            cut_churn=bool(payload.get("cut_churn", True)),
        )


@dataclass(frozen=True)
class RetirementWave:
    """``boards`` devices hard-fail out of the free pool at a time."""

    time_hours: float
    boards: int = 1

    def __post_init__(self) -> None:
        if self.time_hours < 0.0:
            raise ConfigurationError(
                f"retirement time_hours must be >= 0, got {self.time_hours}"
            )
        if int(self.boards) < 1:
            raise ConfigurationError(
                f"retirement boards must be >= 1, got {self.boards}"
            )

    def to_dict(self) -> dict:
        return {"time_hours": self.time_hours, "boards": int(self.boards)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RetirementWave":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"retirement wave must be an object, got {payload!r}"
            )
        known = {"time_hours", "boards"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(
                    f"retirement wave has unknown key {key!r}"
                )
        return cls(
            time_hours=_require_number(payload, "time_hours", "retirement"),
            boards=int(payload.get("boards", 1)),
        )


@dataclass(frozen=True)
class ThermalExcursion:
    """Ambient rises by ``delta_k`` kelvin over a window."""

    start_hours: float
    duration_hours: float
    delta_k: float = 8.0

    def __post_init__(self) -> None:
        if self.start_hours < 0.0:
            raise ConfigurationError(
                f"excursion start_hours must be >= 0, got "
                f"{self.start_hours}"
            )
        if self.duration_hours <= 0.0:
            raise ConfigurationError(
                f"excursion duration_hours must be > 0, got "
                f"{self.duration_hours}"
            )

    @property
    def end_hours(self) -> float:
        return self.start_hours + self.duration_hours

    def to_dict(self) -> dict:
        return {
            "start_hours": self.start_hours,
            "duration_hours": self.duration_hours,
            "delta_k": self.delta_k,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ThermalExcursion":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"thermal excursion must be an object, got {payload!r}"
            )
        known = {"start_hours", "duration_hours", "delta_k"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(
                    f"thermal excursion has unknown key {key!r}"
                )
        return cls(
            start_hours=_require_number(payload, "start_hours", "excursion"),
            duration_hours=_require_number(
                payload, "duration_hours", "excursion"
            ),
            delta_k=float(payload.get("delta_k", 8.0)),
        )


class ExcursionAmbient:
    """Wrap an ambient model with additive excursion windows.

    ``at(t)`` stays a pure function of ``t``, so the wrapper is exactly
    as lazy-timeline-safe as the base model: the region timeline can
    evaluate it at any grid, in any order, and get the same kelvin.
    """

    def __init__(self, base, excursions: Sequence[ThermalExcursion]) -> None:
        self.base = base
        self.excursions = tuple(excursions)

    def at(self, hours: float) -> float:
        kelvin = float(self.base.at(hours))
        for exc in self.excursions:
            if exc.start_hours <= hours < exc.end_hours:
                kelvin += exc.delta_k
        return kelvin


class FleetFaultPlan:
    """A seeded bundle of fleet fault specs plus their firing ledger.

    Randomness comes from per-*identity* streams (one
    :class:`~repro.rng.RngFactory` stream per ``site#key`` pair), so a
    fault decision depends only on which event asks, never on engine
    iteration order -- the engine-invariance contract.

    ``fires`` counts injections per site; ``churn_dropped`` /
    ``churn_truncated`` tally the trace-level effects of outages and
    storms applied by :meth:`transform_churn`.
    """

    def __init__(
        self,
        seed: int = 0,
        wipe: Optional[WipeFaultSpec] = None,
        outages: Sequence[OutageWindow] = (),
        storms: Sequence[PreemptionStorm] = (),
        retirements: Sequence[RetirementWave] = (),
        excursions: Sequence[ThermalExcursion] = (),
    ) -> None:
        self.seed = int(seed)
        if wipe is not None and not isinstance(wipe, WipeFaultSpec):
            raise ConfigurationError(
                f"wipe must be a WipeFaultSpec, got {type(wipe).__name__}"
            )
        for name, seq, klass in (
            ("outages", outages, OutageWindow),
            ("storms", storms, PreemptionStorm),
            ("retirements", retirements, RetirementWave),
            ("excursions", excursions, ThermalExcursion),
        ):
            for item in seq:
                if not isinstance(item, klass):
                    raise ConfigurationError(
                        f"{name} entries must be {klass.__name__} "
                        f"instances, got {type(item).__name__}"
                    )
        self.wipe = wipe
        self.outages = tuple(outages)
        self.storms = tuple(storms)
        self.retirements = tuple(retirements)
        self.excursions = tuple(excursions)
        self._rng = RngFactory(self.seed)
        self.visits: dict[str, int] = {}
        self.fires: dict[str, int] = {}
        self.churn_dropped = 0
        self.churn_truncated = 0

    # -- ledger -------------------------------------------------------

    @property
    def total_fires(self) -> int:
        """Faults injected so far across every site."""
        return sum(self.fires.values())

    def note_fire(self, site: str, count: int = 1) -> None:
        """Record ``count`` injections at ``site`` in the ledger."""
        self.fires[site] = self.fires.get(site, 0) + int(count)

    def ledger(self) -> dict:
        """The complete injection ledger, churn effects included."""
        out = {site: count for site, count in sorted(self.fires.items())}
        out["churn.dropped_by_outage"] = self.churn_dropped
        out["churn.truncated_by_storm"] = self.churn_truncated
        return out

    # -- keyed decisions (engine-invariant) ---------------------------

    def _wipe_fires_remaining(self) -> bool:
        if self.wipe is None or self.wipe.max_fires is None:
            return self.wipe is not None
        fired = (self.fires.get("fleet.wipe_fail", 0)
                 + self.fires.get("fleet.wipe_partial", 0))
        return fired < int(self.wipe.max_fires)

    def decide_wipe(self, key: str, n_routes: int):
        """Decide one release's wipe outcome, keyed to ``key``.

        Returns ``(mode, scrubbed)`` where ``mode`` is ``"ok"``,
        ``"failed"`` or ``"partial"`` and ``scrubbed`` is a per-route
        boolean list (``True`` = actually cleared) for partial wipes,
        ``None`` otherwise.  The draw comes from the
        ``fleet.wipe#<key>`` stream, so any engine asking about the
        same release gets the same answer.
        """
        self.visits["fleet.wipe"] = self.visits.get("fleet.wipe", 0) + 1
        if not self._wipe_fires_remaining():
            return "ok", None
        spec = self.wipe
        rng = self._rng.stream(f"fleet.wipe#{key}")
        u = float(rng.random())
        if u < spec.fail_probability:
            self.note_fire("fleet.wipe_fail")
            return "failed", None
        if u < spec.fail_probability + spec.partial_probability:
            scrubbed = (
                rng.random(int(n_routes)) < spec.scrub_fraction
            ).tolist()
            self.note_fire("fleet.wipe_partial")
            return "partial", scrubbed
        return "ok", None

    def storm_preempts(self, storm_index: int, key: str) -> bool:
        """Whether storm ``storm_index`` reclaims the tenancy ``key``."""
        storm = self.storms[int(storm_index)]
        self.visits["fleet.preempt"] = (
            self.visits.get("fleet.preempt", 0) + 1
        )
        if storm.probability >= 1.0:
            return True
        stream = self._rng.stream(f"fleet.preempt#s{int(storm_index)}#{key}")
        return bool(stream.random() < storm.probability)

    def retire_positions(self, wave_index: int, available: int,
                         count: int) -> list[int]:
        """Free-pool stack positions wave ``wave_index`` retires.

        Positions are drawn without replacement from the
        ``fleet.retire#<wave>`` stream and returned descending, ready
        for pop-by-index without reindexing.
        """
        count = min(int(count), int(available))
        if count <= 0:
            return []
        stream = self._rng.stream(f"fleet.retire#{int(wave_index)}")
        picks = stream.choice(int(available), size=count, replace=False)
        return sorted((int(p) for p in picks), reverse=True)

    # -- outage geometry ----------------------------------------------

    def in_outage(self, hours: float) -> bool:
        """Whether any outage window covers sim time ``hours``."""
        for window in self.outages:
            if window.start_hours <= hours < window.end_hours:
                return True
        return False

    def outage_end(self, hours: float) -> Optional[float]:
        """End of the outage covering ``hours``, or ``None``."""
        for window in self.outages:
            if window.start_hours <= hours < window.end_hours:
                return window.end_hours
        return None

    def outage_hours_within(self, horizon_hours: float) -> float:
        """Total dark hours inside ``[0, horizon_hours]``."""
        dark = 0.0
        for window in self.outages:
            lo = max(0.0, window.start_hours)
            hi = min(float(horizon_hours), window.end_hours)
            dark += max(0.0, hi - lo)
        return dark

    # -- trace-level transforms (applied once, pre-engine) ------------

    def transform_churn(self, arrivals, durations,
                        min_rental_hours: float = 1e-9):
        """Apply outage drops and storm truncation to a churn trace.

        Pure array transform on the *pre-drawn* trace -- both churn
        engines replay the transformed arrays, which is what makes
        churn-level faults engine- and batch-invariant.  Returns
        ``(arrivals, durations, dropped, truncated)`` and tallies the
        counts on the plan.
        """
        arrivals = np.asarray(arrivals, dtype=np.float64)
        durations = np.asarray(durations, dtype=np.float64)
        keep = np.ones(arrivals.shape[0], dtype=bool)
        for window in self.outages:
            if window.drop_churn:
                keep &= ~(
                    (arrivals >= window.start_hours)
                    & (arrivals < window.end_hours)
                )
        dropped = int(arrivals.shape[0] - int(keep.sum()))
        arrivals = arrivals[keep]
        durations = durations[keep].copy()
        truncated = 0
        for storm in self.storms:
            if not storm.cut_churn:
                continue
            spans = (
                (arrivals < storm.start_hours)
                & (arrivals + durations > storm.start_hours)
            )
            hit = int(spans.sum())
            if hit:
                truncated += hit
                durations[spans] = np.maximum(
                    storm.start_hours - arrivals[spans], min_rental_hours
                )
        self.churn_dropped += dropped
        self.churn_truncated += truncated
        return arrivals, durations, dropped, truncated

    def wrap_ambient(self, base):
        """Wrap an ambient model with this plan's thermal excursions."""
        if not self.excursions:
            return base
        self.note_fire("fleet.thermal", len(self.excursions))
        return ExcursionAmbient(base, self.excursions)

    # -- lifecycle ----------------------------------------------------

    def fresh(self) -> "FleetFaultPlan":
        """An unconsumed copy (pristine RNG streams and ledger)."""
        return FleetFaultPlan.from_dict(self.to_dict())

    def reseeded(self, seed: int) -> "FleetFaultPlan":
        """An unconsumed copy under a different seed (sweep per-seed)."""
        payload = self.to_dict()
        payload["seed"] = int(seed)
        return FleetFaultPlan.from_dict(payload)

    # -- persistence --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation (specs + seed, not the ledger)."""
        payload: dict = {"schema": FLEET_PLAN_SCHEMA, "seed": self.seed}
        if self.wipe is not None:
            payload["wipe"] = self.wipe.to_dict()
        if self.outages:
            payload["outages"] = [w.to_dict() for w in self.outages]
        if self.storms:
            payload["storms"] = [s.to_dict() for s in self.storms]
        if self.retirements:
            payload["retirements"] = [r.to_dict() for r in self.retirements]
        if self.excursions:
            payload["excursions"] = [e.to_dict() for e in self.excursions]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Unknown keys and malformed specs raise
        :class:`~repro.errors.ConfigurationError` naming the offending
        key, never a raw ``KeyError``/``TypeError``.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                "payload is not a serialised fleet fault plan"
            )
        known = {"schema", "seed", "wipe", "outages", "storms",
                 "retirements", "excursions"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(
                    f"fleet fault plan has unknown key {key!r} (known: "
                    f"{', '.join(sorted(known))})"
                )
        schema = payload.get("schema", FLEET_PLAN_SCHEMA)
        if schema != FLEET_PLAN_SCHEMA:
            raise ConfigurationError(
                f"fleet fault plan has schema {schema!r}; this build "
                f"reads {FLEET_PLAN_SCHEMA}"
            )
        try:
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"fleet fault plan seed must be an integer: {exc}"
            ) from exc

        def _sequence(key: str, klass) -> list:
            raw = payload.get(key, ())
            if not isinstance(raw, (list, tuple)):
                raise ConfigurationError(
                    f"fleet fault plan key {key!r} must be a list, got "
                    f"{raw!r}"
                )
            return [klass.from_dict(item) for item in raw]

        wipe = None
        if payload.get("wipe") is not None:
            wipe = WipeFaultSpec.from_dict(payload["wipe"])
        return cls(
            seed=seed,
            wipe=wipe,
            outages=_sequence("outages", OutageWindow),
            storms=_sequence("storms", PreemptionStorm),
            retirements=_sequence("retirements", RetirementWave),
            excursions=_sequence("excursions", ThermalExcursion),
        )

    def save(self, path: PathLike) -> Path:
        """Write the plan as JSON (atomically); returns the path."""
        from repro.persistence import atomic_write_text

        target = Path(path)
        atomic_write_text(target, json.dumps(self.to_dict(), indent=1))
        return target


def load_fleet_fault_plan(path: PathLike) -> FleetFaultPlan:
    """Read a plan back from :meth:`FleetFaultPlan.save` output.

    Every failure mode raises :class:`~repro.errors.PersistenceError`
    naming the file (and, for malformed payloads, the offending key) --
    the CLI prints these as one-line errors instead of tracebacks.
    """
    source = Path(path)
    if not source.exists():
        raise PersistenceError(f"no fleet fault plan at {source}")
    try:
        text = source.read_text()
    except OSError as exc:
        raise PersistenceError(
            f"cannot read fleet fault plan {source}: {exc}"
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"fleet fault plan {source} is corrupt: {exc}"
        ) from exc
    try:
        return FleetFaultPlan.from_dict(payload)
    except ConfigurationError as exc:
        raise PersistenceError(
            f"fleet fault plan {source}: {exc}"
        ) from exc


def default_fleet_chaos_plan(seed: int = 0) -> FleetFaultPlan:
    """The committed default: every fault family, modest severity.

    2% failed + 5% partial wipes (the paper-relevant leak), one
    region outage window, one half-strength preemption storm, a small
    retirement wave, and one thermal excursion.
    """
    return FleetFaultPlan(
        seed=seed,
        wipe=WipeFaultSpec(
            fail_probability=0.02,
            partial_probability=0.05,
            scrub_fraction=0.5,
        ),
        outages=(OutageWindow(start_hours=90.0, duration_hours=14.0),),
        storms=(PreemptionStorm(start_hours=150.0, probability=0.5),),
        retirements=(RetirementWave(time_hours=60.0, boards=3),),
        excursions=(
            ThermalExcursion(
                start_hours=40.0, duration_hours=24.0, delta_k=8.0
            ),
        ),
    )


def derive_fleet_plan_seed(plan_seed: int, campaign_seed: int) -> int:
    """Fold a campaign seed into a plan seed (sweep per-seed plans).

    Mirrors the chaos sweep's derivation
    (:func:`repro.reliability.chaos.derive_plan_seed`): distinct
    campaign seeds get decorrelated fault streams while staying fully
    reproducible from the pair.
    """
    return int(plan_seed) * 1_000_003 + int(campaign_seed)


def note_fleet_fault(site: str, **attrs) -> None:
    """Record one fleet fault injection: counters, instant span, event.

    The counter pair mirrors :func:`~repro.reliability.faults
    .maybe_inject` (``fleet_faults_injected_total`` plus a per-site
    decomposition); the zero-duration ``fleet.fault`` span becomes a
    Chrome-trace instant event.
    """
    registry.counter(
        "fleet_faults_injected_total",
        "fleet faults injected by the active plan",
    ).inc()
    registry.counter(
        "fleet_faults_injected_" + site.replace(".", "_") + "_total",
        f"fleet faults injected at site {site}",
    ).inc()
    with trace.span("fleet.fault", site=site, **attrs):
        pass  # zero-duration marker span -> timeline instant event
    _progress.note_event("fleet.fault", site=site, **attrs)
    _log.info("fleet_fault_injected", site=site, **attrs)
