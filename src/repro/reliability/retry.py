"""Retry with exponential backoff, deterministic jitter, simulated sleep.

The pipeline's transient failures (capacity misses, preemption notices,
dropped captures -- anything carrying the
:class:`~repro.errors.TransientError` mixin) are retried under a
:class:`RetryPolicy`: exponential backoff from ``base_delay_s`` with
bounded deterministic jitter, capped per-wait at ``max_delay_s`` and in
total at ``max_total_delay_s``, giving up after ``max_attempts``
attempts.

Two deliberate departures from a wall-clock retry loop keep the
simulation fast and reproducible:

* **Simulated sleep.** The backoff delay is *recorded*, never slept:
  it lands in the ``retry_wait_simulated_seconds_total`` counter and on
  the ``retry.wait`` span (``simulated_delay_s``), so profiles and
  chaos reports price the waiting without the process actually idling.
* **Deterministic jitter.** The jitter factor hashes the retry label
  and attempt index (FNV-1a, process-stable) instead of drawing from an
  RNG, so retries neither consume experiment randomness nor vary
  between runs.

Fatal errors (anything not transient) propagate immediately; a
transient error that survives every attempt is re-raised unchanged, so
callers degrade per-route instead of seeing a new exception type.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from repro.errors import ConfigurationError, TransientError
from repro.observability import progress as _progress
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.rng import _stable_hash

__all__ = [
    "RetryPolicy",
    "retry_call",
    "get_retry_policy",
    "set_retry_policy",
    "retry_policy",
    "note_retry",
]

_log = get_logger("reliability.retry")

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff knobs for retrying transient errors.

    Attributes:
        max_attempts: total tries, including the first (>= 1).
        base_delay_s: simulated wait before the first retry.
        multiplier: backoff growth factor per further retry.
        max_delay_s: per-wait ceiling.
        jitter: fractional jitter amplitude (0.1 = +/-10%), applied
            deterministically from the retry label and attempt index.
        max_total_delay_s: give up once accumulated simulated waiting
            would exceed this budget.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 8.0
    jitter: float = 0.1
    max_total_delay_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0.0 or self.max_delay_s < 0.0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.max_total_delay_s < 0.0:
            raise ConfigurationError("max_total_delay_s must be >= 0")

    def delay_s(self, attempt: int, label: str = "") -> float:
        """Simulated backoff before retry number ``attempt`` (1-based).

        Deterministic: the jitter factor derives from a stable hash of
        ``(label, attempt)``, so the same retry sequence always waits
        the same simulated amounts.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter:
            unit = (_stable_hash(f"{label}#{attempt}") % 10_000) / 10_000.0
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay


#: The process-wide default policy (the CLI/chaos knob).
_default_policy = RetryPolicy()


def get_retry_policy() -> RetryPolicy:
    """The process-wide default retry policy."""
    return _default_policy


def set_retry_policy(policy: RetryPolicy) -> RetryPolicy:
    """Replace the process-wide default policy; returns the previous."""
    global _default_policy
    if not isinstance(policy, RetryPolicy):
        raise ConfigurationError(
            f"expected a RetryPolicy, got {type(policy).__name__}"
        )
    previous = _default_policy
    _default_policy = policy
    return previous


@contextmanager
def retry_policy(policy: RetryPolicy) -> Iterator[RetryPolicy]:
    """Temporarily install a default retry policy."""
    previous = set_retry_policy(policy)
    try:
        yield policy
    finally:
        set_retry_policy(previous)


def note_retry(label: str, attempt: int, delay_s: float,
               error: BaseException, unit: str = "s") -> None:
    """Record one retry: counters, span, log line.

    Shared by :func:`retry_call` and the few loops (flash-attack
    acquisition, fleet outage RENT requeues) that implement their own
    retry shape but should show up in the same telemetry.

    ``unit`` prices the simulated wait: ``"s"`` (wall-style seconds,
    the default) accumulates into
    ``retry_wait_simulated_seconds_total``; ``"h"`` marks a delay
    denominated in *simulated fleet hours* and lands in
    ``retry_wait_simulated_hours_total`` instead, so event-driven
    campaigns don't pollute the seconds counter with hour-scale waits.
    """
    if unit not in ("s", "h"):
        raise ConfigurationError(
            f"retry unit must be 's' or 'h', got {unit!r}"
        )
    registry.counter(
        "retries_total", "transient-error retries performed"
    ).inc()
    if unit == "h":
        registry.counter(
            "retry_wait_simulated_hours_total",
            "simulated backoff hours accumulated by fleet retries",
        ).inc(delay_s)
        delay_attr = {"simulated_delay_h": round(delay_s, 6)}
    else:
        registry.counter(
            "retry_wait_simulated_seconds_total",
            "simulated backoff seconds accumulated by retries",
        ).inc(delay_s)
        delay_attr = {"simulated_delay_s": round(delay_s, 6)}
    with trace.span("retry.wait", label=label, attempt=attempt,
                    error=type(error).__name__, **delay_attr):
        pass  # simulated: the wait is recorded, never slept
    _progress.note_event("retry", label=label, attempt=attempt,
                         error=type(error).__name__)
    _log.info("retrying", label=label, attempt=attempt,
              error=type(error).__name__, **delay_attr)


def retry_call(
    fn: Callable[..., T],
    *args,
    policy: Optional[RetryPolicy] = None,
    label: Optional[str] = None,
    **kwargs,
) -> T:
    """Call ``fn(*args, **kwargs)``, retrying transient failures.

    Only errors carrying the :class:`~repro.errors.TransientError`
    mixin are retried; anything else propagates immediately.  When the
    attempt or total-delay budget runs out, the *original* transient
    error is re-raised so callers can degrade per-route.
    """
    policy = policy or _default_policy
    label = label or getattr(fn, "__name__", "call")
    total_delay = 0.0
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args, **kwargs)
        except TransientError as exc:
            if attempt >= policy.max_attempts:
                _log.warning("retries_exhausted", label=label,
                             attempts=attempt,
                             error=type(exc).__name__)
                raise
            delay = policy.delay_s(attempt, label)
            if total_delay + delay > policy.max_total_delay_s:
                _log.warning("retry_budget_exhausted", label=label,
                             attempts=attempt,
                             simulated_delay_s=round(total_delay, 4))
                raise
            total_delay += delay
            note_retry(label, attempt, delay, exc)
    raise AssertionError("unreachable")  # pragma: no cover
