"""Fault injection, fault tolerance and checkpoint/resume.

Three layers, threaded through the whole attack pipeline:

* :mod:`repro.reliability.faults` -- a seeded, deterministic
  :class:`FaultPlan` drives named injection points (allocation misses,
  preemptions, evictions, calibration glitches, dropped captures);
  with no plan installed every site is a single-predicate no-op.
* :mod:`repro.reliability.retry` -- :class:`RetryPolicy` /
  :func:`retry_call`: exponential backoff with deterministic jitter
  and *simulated* (recorded, never slept) waits for anything carrying
  the :class:`~repro.errors.TransientError` mixin.
* :mod:`repro.reliability.checkpoint` -- :class:`SweepJournal`:
  atomic per-seed completion journal behind ``repro sweep --resume``.

:mod:`repro.reliability.chaos` composes them: whole experiments under
a documented fault storm, gated on recovery-accuracy bounds.
:mod:`repro.reliability.fleet_chaos` extends the storm to the
event-driven fleet: a :class:`FleetFaultPlan` injects failed/partial
wipes, region outages, preemption storms, board retirements and
thermal excursions with draws keyed to event identity, so the same
plan produces bit-identical campaigns on every churn engine.
"""

from repro.reliability.chaos import (
    CHAOS_ACCURACY_BOUNDS,
    ChaosReport,
    default_chaos_plan,
    derive_plan_seed,
    run_chaos,
    run_chaos_sweep,
)
from repro.reliability.fleet_chaos import (
    FLEET_FAULT_SITES,
    ExcursionAmbient,
    FleetFaultPlan,
    OutageWindow,
    PreemptionStorm,
    RetirementWave,
    ThermalExcursion,
    WipeFaultSpec,
    default_fleet_chaos_plan,
    derive_fleet_plan_seed,
    load_fleet_fault_plan,
    note_fleet_fault,
)
from repro.reliability.checkpoint import SweepJournal
from repro.reliability.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    fault_plan,
    get_fault_plan,
    load_fault_plan,
    maybe_inject,
    set_fault_plan,
)
from repro.reliability.retry import (
    RetryPolicy,
    get_retry_policy,
    note_retry,
    retry_call,
    retry_policy,
    set_retry_policy,
)

__all__ = [
    "CHAOS_ACCURACY_BOUNDS",
    "ChaosReport",
    "default_chaos_plan",
    "derive_plan_seed",
    "run_chaos",
    "run_chaos_sweep",
    "FLEET_FAULT_SITES",
    "ExcursionAmbient",
    "FleetFaultPlan",
    "OutageWindow",
    "PreemptionStorm",
    "RetirementWave",
    "ThermalExcursion",
    "WipeFaultSpec",
    "default_fleet_chaos_plan",
    "derive_fleet_plan_seed",
    "load_fleet_fault_plan",
    "note_fleet_fault",
    "SweepJournal",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "fault_plan",
    "get_fault_plan",
    "load_fault_plan",
    "maybe_inject",
    "set_fault_plan",
    "RetryPolicy",
    "get_retry_policy",
    "note_retry",
    "retry_call",
    "retry_policy",
    "set_retry_policy",
]
