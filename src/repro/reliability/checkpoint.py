"""Checkpoint/resume journal for Monte Carlo sweeps.

A :class:`SweepJournal` records one entry per *completed* seed of a
sweep -- the metric value plus the observability state
(:meth:`~repro.observability.metrics.MetricsRegistry.dump_state`, and
for parallel runs the worker's span forest) captured for exactly that
seed.  Every :meth:`record` rewrites the whole journal atomically
(write-temp-then-``os.replace`` via
:func:`repro.persistence.atomic_write_text`), so a crash or Ctrl-C mid
sweep leaves at worst the previous consistent journal, never a
truncated one.

On resume, :func:`repro.montecarlo.run_monte_carlo` skips every seed
the journal already holds and merges the recorded metric/span state
back in; because the recorded states carry their original ``dump_id``s,
merging is idempotent and the resumed run's final telemetry matches an
uninterrupted run bit-for-bit (timing histograms aside -- those measure
the host, not the experiment).

The journal carries a ``context`` dict (metric name, seed list, quick
flag ...); resuming under a different context raises
:class:`~repro.errors.PersistenceError` rather than silently mixing two
sweeps' results in one file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import PersistenceError
from repro.observability.log import get_logger
from repro.persistence import atomic_write_text

__all__ = ["SweepJournal"]

_log = get_logger("reliability.checkpoint")

PathLike = Union[str, Path]

#: Journal file schema marker.
JOURNAL_SCHEMA = 1


class SweepJournal:
    """Per-seed completion journal with atomic writes.

    Args:
        path: journal file location (created on first :meth:`record`).
        context: sweep identity -- compared on resume to refuse mixing
            incompatible sweeps into one journal.
    """

    def __init__(self, path: PathLike,
                 context: Optional[dict] = None) -> None:
        self.path = Path(path)
        self.context: dict = dict(context or {})
        self._entries: dict[int, dict] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def load(cls, path: PathLike,
             context: Optional[dict] = None) -> "SweepJournal":
        """Read a journal back; verify ``context`` if given.

        A missing file yields an empty journal (first run); corrupt or
        truncated JSON raises :class:`PersistenceError` naming the
        file, as does a context mismatch.
        """
        source = Path(path)
        journal = cls(source, context=context)
        if not source.exists():
            return journal
        try:
            payload = json.loads(source.read_text())
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"sweep journal {source} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise PersistenceError(
                f"{source} is not a sweep journal"
            )
        if payload.get("schema") != JOURNAL_SCHEMA:
            raise PersistenceError(
                f"sweep journal {source} has schema "
                f"{payload.get('schema')!r}; this build reads "
                f"{JOURNAL_SCHEMA}"
            )
        stored = payload.get("context", {})
        if context is not None and stored != dict(context):
            raise PersistenceError(
                f"sweep journal {source} was written for a different "
                f"sweep (journal context {stored!r}, requested "
                f"{dict(context)!r}); refusing to mix results"
            )
        journal.context = dict(stored)
        try:
            for entry in payload["entries"]:
                journal._entries[int(entry["seed"])] = entry
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"sweep journal {source} is missing required data: "
                f"{exc!r}"
            ) from exc
        _log.info("journal_loaded", path=str(source),
                  seeds=len(journal._entries))
        return journal

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seed: int) -> bool:
        return int(seed) in self._entries

    def completed_seeds(self) -> list[int]:
        """Seeds already journaled, ascending."""
        return sorted(self._entries)

    def get(self, seed: int) -> dict:
        """The journal entry for ``seed`` (KeyError if absent)."""
        return self._entries[int(seed)]

    def value(self, seed: int) -> float:
        """The recorded metric value for ``seed``."""
        return float(self._entries[int(seed)]["value"])

    # -- recording ----------------------------------------------------

    def record(self, seed: int, value: float,
               metrics_state: Optional[dict] = None,
               trace_state: Optional[dict] = None,
               extra: Optional[dict] = None) -> None:
        """Journal one completed seed and flush atomically.

        ``metrics_state``/``trace_state`` are the observability dumps
        for exactly this seed's work; they are replayed on resume so a
        resumed sweep's telemetry matches an uninterrupted one.
        ``extra`` carries arbitrary JSON-ready payload a caller wants
        back verbatim on resume -- the fleet sweep stores each seed's
        full campaign result and FlightRecorder dump there, which is
        what makes a killed ``repro fleet`` run resume bit-identically.
        """
        entry: dict = {"seed": int(seed), "value": float(value)}
        if metrics_state is not None:
            entry["metrics_state"] = metrics_state
        if trace_state is not None:
            entry["trace_state"] = trace_state
        if extra is not None:
            entry["extra"] = extra
        self._entries[int(seed)] = entry
        self._flush()

    def _flush(self) -> None:
        payload = {
            "schema": JOURNAL_SCHEMA,
            "context": self.context,
            "entries": [
                self._entries[seed] for seed in sorted(self._entries)
            ],
        }
        atomic_write_text(self.path, json.dumps(payload))
