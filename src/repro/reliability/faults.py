"""Seeded, deterministic fault injection.

A :class:`FaultPlan` decides -- reproducibly -- when a *fault site*
fires.  Sites are string names wired into the pipeline's choke points
(``cloud.allocate``, ``cloud.preempt``, ``cloud.evict``,
``sensor.calibrate``, ``sensor.capture``); each site's decisions come
from its own named RNG stream (:class:`~repro.rng.RngFactory`), so the
injection layer never perturbs the experiment's own draws and two runs
under the same plan inject the identical fault sequence.

A site fires either *probabilistically* (each visit draws one uniform
against ``probability``) or on a *schedule* (fire on the listed visit
indices, zero-based); ``max_fires`` caps the total either way.

The hot-path contract mirrors :mod:`repro.observability.trace`: with no
plan installed, :func:`maybe_inject` is a single ``None`` check -- the
PR 2/3 kernels pay one predicate per call site and nothing else.

Usage::

    plan = FaultPlan(seed=7, specs={
        "cloud.allocate": FaultSpec(probability=0.15),
        "cloud.preempt": FaultSpec(schedule=(1, 4)),
    })
    with fault_plan(plan):
        run_experiment2(config)
    assert plan.fires["cloud.allocate"] >= 1
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Type, Union

from repro.errors import ConfigurationError, PersistenceError
from repro.observability import progress as _progress
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.rng import RngFactory

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "maybe_inject",
    "get_fault_plan",
    "set_fault_plan",
    "fault_plan",
    "load_fault_plan",
]

_log = get_logger("reliability.faults")

PathLike = Union[str, Path]

#: The fault sites wired into the pipeline, with what firing raises.
FAULT_SITES = (
    "cloud.allocate",   # Region.allocate        -> CapacityError
    "cloud.preempt",    # F1Instance.run_hours   -> PreemptionError
    "cloud.evict",      # F1Instance.load_image  -> EvictionError
    "sensor.calibrate",  # find_theta_init       -> CalibrationGlitchError
    "sensor.capture",   # measure_raw            -> CaptureDropError
)


@dataclass(frozen=True)
class FaultSpec:
    """How one fault site fires.

    Exactly one of ``probability`` (per-visit Bernoulli) or
    ``schedule`` (zero-based visit indices) must be given;
    ``max_fires`` bounds the total number of injections at the site.
    """

    probability: Optional[float] = None
    schedule: tuple = ()
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.probability is None) == (not self.schedule):
            raise ConfigurationError(
                "a FaultSpec needs exactly one of probability or schedule"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if any(int(i) < 0 for i in self.schedule):
            raise ConfigurationError("schedule indices must be >= 0")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigurationError(
                f"max_fires must be >= 0, got {self.max_fires}"
            )

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        payload: dict = {}
        if self.probability is not None:
            payload["probability"] = self.probability
        if self.schedule:
            payload["schedule"] = [int(i) for i in self.schedule]
        if self.max_fires is not None:
            payload["max_fires"] = self.max_fires
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Non-object payloads and unknown keys raise
        :class:`~repro.errors.ConfigurationError` naming the problem.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault spec must be an object, got {payload!r}"
            )
        known = {"probability", "schedule", "max_fires"}
        for key in payload:
            if key not in known:
                raise ConfigurationError(
                    f"fault spec has unknown key {key!r}"
                )
        return cls(
            probability=payload.get("probability"),
            schedule=tuple(payload.get("schedule", ())),
            max_fires=payload.get("max_fires"),
        )


class FaultPlan:
    """A seeded set of per-site fault specs plus their firing state.

    The plan owns one named RNG stream per probabilistic site (derived
    from ``seed`` via :class:`~repro.rng.RngFactory`), and counts both
    visits and fires per site -- ``plan.fires`` after a run is the
    injection ledger a chaos report prints.
    """

    def __init__(self, seed: int = 0,
                 specs: Optional[dict] = None) -> None:
        self.seed = int(seed)
        self.specs: dict[str, FaultSpec] = dict(specs or {})
        for site, spec in self.specs.items():
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"site {site!r}: specs must be FaultSpec instances"
                )
        self._rng = RngFactory(self.seed)
        self.visits: dict[str, int] = {}
        self.fires: dict[str, int] = {}

    @property
    def total_fires(self) -> int:
        """Faults injected so far across every site."""
        return sum(self.fires.values())

    def should_fire(self, site: str) -> bool:
        """One visit of ``site``: decide (and record) whether it fires."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        visit = self.visits.get(site, 0)
        self.visits[site] = visit + 1
        fired = self.fires.get(site, 0)
        if spec.max_fires is not None and fired >= spec.max_fires:
            return False
        if spec.probability is not None:
            fire = bool(
                self._rng.stream(site).random() < spec.probability
            )
        else:
            fire = visit in spec.schedule
        if fire:
            self.fires[site] = fired + 1
        return fire

    def to_dict(self) -> dict:
        """JSON-ready representation (specs + seed, not firing state)."""
        return {
            "schema": 1,
            "seed": self.seed,
            "specs": {
                site: spec.to_dict()
                for site, spec in sorted(self.specs.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(payload, dict) or "specs" not in payload:
            raise ConfigurationError("payload is not a serialised fault plan")
        try:
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"fault plan seed must be an integer: {exc}"
            ) from exc
        raw_specs = payload["specs"]
        if not isinstance(raw_specs, dict):
            raise ConfigurationError(
                f"fault plan 'specs' must be an object mapping site "
                f"names to specs, got {type(raw_specs).__name__}"
            )
        specs: dict[str, FaultSpec] = {}
        for site, spec in raw_specs.items():
            try:
                specs[str(site)] = FaultSpec.from_dict(spec)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"site {site!r}: {exc}"
                ) from exc
            except (TypeError, ValueError, AttributeError) as exc:
                raise ConfigurationError(
                    f"site {site!r}: malformed spec {spec!r} ({exc})"
                ) from exc
        return cls(seed=seed, specs=specs)

    def save(self, path: PathLike) -> Path:
        """Write the plan as JSON (atomically); returns the path."""
        from repro.persistence import atomic_write_text

        target = Path(path)
        atomic_write_text(target, json.dumps(self.to_dict(), indent=1))
        return target


def load_fault_plan(path: PathLike,
                    known_sites: Optional[tuple] = FAULT_SITES) -> FaultPlan:
    """Read a plan back from :meth:`FaultPlan.save` output.

    Every failure mode -- missing/unreadable file, corrupt JSON,
    malformed specs, or (unless ``known_sites=None``) site names the
    pipeline has no injection point for -- raises
    :class:`~repro.errors.PersistenceError` naming the file and the
    offending key, so the CLI reports a one-line error instead of a
    traceback.
    """
    source = Path(path)
    if not source.exists():
        raise PersistenceError(f"no fault plan at {source}")
    try:
        text = source.read_text()
    except OSError as exc:
        raise PersistenceError(
            f"cannot read fault plan {source}: {exc}"
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"fault plan {source} is corrupt: {exc}"
        ) from exc
    try:
        plan = FaultPlan.from_dict(payload)
    except ConfigurationError as exc:
        raise PersistenceError(f"fault plan {source}: {exc}") from exc
    if known_sites is not None:
        unknown = sorted(set(plan.specs) - set(known_sites))
        if unknown:
            raise PersistenceError(
                f"fault plan {source} names unknown site(s) "
                f"{', '.join(repr(s) for s in unknown)}; known sites: "
                f"{', '.join(known_sites)}"
            )
    return plan


#: The installed plan; ``None`` (the default) keeps every injection
#: point on its no-op fast path.
_ACTIVE: Optional[FaultPlan] = None


def get_fault_plan() -> Optional[FaultPlan]:
    """The currently installed fault plan, or ``None``."""
    return _ACTIVE


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or with ``None`` remove) the process-wide fault plan.

    Returns the previously installed plan so callers can restore it;
    scoped use goes through :func:`fault_plan` instead.
    """
    global _ACTIVE
    if plan is not None and not isinstance(plan, FaultPlan):
        raise ConfigurationError(
            f"expected a FaultPlan or None, got {type(plan).__name__}"
        )
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


@contextmanager
def fault_plan(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Temporarily install a fault plan for the enclosed block."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def maybe_inject(site: str, exc_type: Type[Exception],
                 message: str) -> None:
    """Raise ``exc_type(message)`` if the active plan fires ``site``.

    This is the call every injection point makes.  With no plan
    installed it returns after a single ``None`` check -- the no-op
    fast path the PR 2/3 hot loops rely on.
    """
    plan = _ACTIVE
    if plan is None:
        return
    if not plan.should_fire(site):
        return
    registry.counter(
        "faults_injected_total", "faults injected by the active plan"
    ).inc()
    registry.counter(
        "faults_injected_" + site.replace(".", "_") + "_total",
        f"faults injected at site {site}",
    ).inc()
    with trace.span("fault.inject", site=site,
                    error=exc_type.__name__):
        pass  # zero-duration marker span -> timeline instant event
    _progress.note_event("fault", site=site, error=exc_type.__name__,
                         fires=plan.fires.get(site, 0))
    _log.info("fault_injected", site=site, error=exc_type.__name__,
              fires=plan.fires.get(site, 0))
    raise exc_type(message)
