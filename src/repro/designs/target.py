"""The Target design (Figure 4 of the paper).

Holds a bank of routes under test at fixed burn values (the Type A or
Type B secret), surrounded by arithmetic-heavy heater circuits.  The
columns traversed by the routes under test -- plus the slices the
Measure design will later need for its carry chains -- are kept free of
heater logic (the paper's explicitly-uninitialised keep-out region).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.fabric.bitstream import Bitstream
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.parts import PartDescriptor
from repro.fabric.placement import FixedPlacer
from repro.fabric.routing import Route
from repro.designs.arithmetic import build_fma_array


@dataclass(frozen=True)
class TargetDesign:
    """A compiled Target design plus its secret bindings."""

    bitstream: Bitstream
    routes: tuple[Route, ...]
    burn_values: tuple[int, ...]

    def value_of(self, route_name: str) -> int:
        """The burn value held on a route (the secret; oracle for tests)."""
        for route, value in zip(self.routes, self.burn_values):
            if route.name == route_name:
                return value
        raise ConfigurationError(f"no route named {route_name!r}")


def keep_out_columns(routes: Sequence[Route]) -> frozenset[int]:
    """Columns any route under test touches: no heater logic there."""
    return frozenset(
        segment.origin.x for route in routes for segment in route
    )


def build_target_design(
    part: PartDescriptor,
    routes: Sequence[Route],
    burn_values: Sequence[int],
    heater_dsps: int = 1150,
    name: str = "target",
) -> TargetDesign:
    """Compile a Target design over an existing route bank.

    Each route gets a driving register and a sink LUT ("the route
    between an FPGA register and a CLB"), and its net statically holds
    the corresponding burn value.  ``heater_dsps`` FMA units fill the
    remaining DSP fabric.
    """
    if len(routes) != len(burn_values):
        raise ConfigurationError(
            f"{len(routes)} routes but {len(burn_values)} burn values"
        )
    for value in burn_values:
        if value not in (0, 1):
            raise ConfigurationError(f"burn values must be bits, got {value!r}")
    grid = part.make_grid()
    netlist = Netlist(name=name)
    placer = FixedPlacer(grid)

    for route, value in zip(routes, burn_values):
        driver = netlist.add_cell(
            Cell(name=f"{route.name}_src_ff", cell_type=CellType.FLIP_FLOP)
        )
        sink = netlist.add_cell(
            Cell(name=f"{route.name}_dst_lut", cell_type=CellType.LUT)
        )
        start, end = route.endpoints
        placer.place_at(
            driver.name,
            CellType.FLIP_FLOP,
            placer.nearest_tile(start, CellType.FLIP_FLOP),
        )
        placer.place_at(
            sink.name, CellType.LUT, placer.nearest_tile(end, CellType.LUT)
        )
        netlist.add_net(
            Net(
                name=route.name,
                driver=driver.name,
                sinks=(sink.name,),
                activity=NetActivity.STATIC,
                static_value=int(value),
            ).with_route(route)
        )

    build_fma_array(
        netlist,
        placer,
        dsp_count=heater_dsps,
        avoid_columns=keep_out_columns(routes),
    )
    bitstream = Bitstream.compile(netlist, placer.placement)
    return TargetDesign(
        bitstream=bitstream,
        routes=tuple(routes),
        burn_values=tuple(int(v) for v in burn_values),
    )
