"""The Measure design (Figure 5 of the paper).

An array of Tunable Dual-Polarity TDC sensors, one per route under test,
placed in the region the Target design left uninitialised.  The routes
themselves are the same physical segments the Target design used
(identical routing constraints), so the sensors read the analog state
the victim's data left behind.

Because sensing happens at runtime on a specific physical device, the
compiled :class:`MeasureDesign` is *attached* to a device after loading,
yielding a :class:`MeasureSession` that owns the per-route TDC instances
and implements the Calibration and Measurement phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

from repro.errors import (
    CalibrationGlitchError,
    ConfigurationError,
    SensorError,
    TransientError,
)
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.retry import retry_call
from repro.fabric.bitstream import Bitstream
from repro.fabric.device import FpgaDevice
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.parts import PartDescriptor
from repro.fabric.placement import FixedPlacer
from repro.fabric.routing import Route
from repro.reliability.faults import maybe_inject
from repro.rng import SeedLike, make_rng
from repro.sensor.bank import RouteDraws, resolve_bank
from repro.sensor.calibration import (
    _check_calibration_kernel,
    find_theta_init,
    find_theta_init_bank,
    get_calibration_kernel,
)
from repro.sensor.noise import CLOUD_NOISE, NoiseModel
from repro.sensor.tdc import (
    Measurement,
    TunableDualPolarityTdc,
    _check_kernel,
    get_capture_kernel,
)

#: CARRY8 primitives per 64-element chain (eight 8-bit carries).
_CARRIES_PER_CHAIN = 8

#: Wall-clock cost of measuring one route (traces, readout, tuning); the
#: paper reports ~52 s for 64 routes, i.e. well under a minute total.
MEASUREMENT_SECONDS_PER_ROUTE = 0.8

_log = get_logger("designs.measure")


@dataclass(frozen=True)
class MeasureDesign:
    """A compiled Measure design: TDC array over a route bank."""

    bitstream: Bitstream
    routes: tuple[Route, ...]

    def attach(
        self,
        device: FpgaDevice,
        noise: NoiseModel = CLOUD_NOISE,
        seed: SeedLike = None,
    ) -> "MeasureSession":
        """Bind the sensor array to a device the design is loaded on."""
        if device.loaded_design is None or (
            device.loaded_design.bitstream_id != self.bitstream.bitstream_id
        ):
            raise SensorError(
                "measure design must be loaded on the device before attaching"
            )
        return MeasureSession(
            device=device, routes=self.routes, noise=noise, seed=seed
        )


@dataclass
class MeasureSession:
    """Runtime sensing session: one TDC per route on one device."""

    device: FpgaDevice
    routes: tuple[Route, ...]
    noise: NoiseModel = CLOUD_NOISE
    seed: SeedLike = None
    theta_init: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # One independent child stream per route: the bank-level kernels
        # interleave routes freely (lockstep calibration, stacked
        # measurement) yet each route materialises exactly the draws its
        # sequential per-route scan would, so batched and per-route
        # orchestration are bit-identical.
        rng = make_rng(self.seed)
        streams = rng.spawn(len(self.routes)) if self.routes else []
        self._tdcs = {
            route.name: TunableDualPolarityTdc(
                device=self.device, route=route, noise=self.noise,
                seed=stream,
            )
            for route, stream in zip(self.routes, streams)
        }

    @property
    def route_names(self) -> tuple[str, ...]:
        """Names of the routes under test, in bank order."""
        return tuple(route.name for route in self.routes)

    def calibrate(
        self,
        kernel: Optional[str] = None,
        calibration: Optional[str] = None,
    ) -> dict[str, float]:
        """The Calibration phase: find and store theta_init per route.

        ``kernel`` selects the capture implementation per probe trace
        ("batched"/"scalar") and ``calibration`` the scan orchestration
        ("batched" runs every route's descent in lockstep, one stacked
        resolve per probe round; "scalar" scans route by route).
        ``None`` takes the process defaults.  Both axes are
        bit-identical: each route owns an independent generator stream
        and takes the same probes in the same order either way.
        """
        capture = _check_kernel(kernel or get_capture_kernel())
        scan = _check_calibration_kernel(
            calibration or get_calibration_kernel()
        )
        if capture == "batched" and scan == "batched":
            return self._calibrate_bank()
        unrecovered = 0
        for name, tdc in self._tdcs.items():
            with trace.span("sensor.calibrate", route=name):
                try:
                    self.theta_init[name] = retry_call(
                        find_theta_init, tdc, kernel=kernel,
                        label=f"sensor.calibrate:{name}",
                    )
                except TransientError:
                    # Glitch past the retry budget: the route stays
                    # uncalibrated and downstream passes skip it.
                    unrecovered += 1
                    registry.counter(
                        "calibrations_unrecovered_total",
                        "routes left uncalibrated past the retry budget",
                    ).inc()
                    _log.warning("calibration_unrecovered", route=name)
                    continue
            registry.counter(
                "calibrations_total", "routes calibrated from scratch"
            ).inc()
        _log.info("calibrated", routes=len(self._tdcs) - unrecovered,
                  unrecovered=unrecovered)
        return dict(self.theta_init)

    def _calibrate_bank(self) -> dict[str, float]:
        """Lockstep calibration: one stacked resolve per probe round.

        Mirrors the sequential loop's observable behaviour exactly: the
        glitch fault site fires (and retries) per route in bank order
        before any probe, glitched routes degrade to uncalibrated, and
        the lockstep scan over the survivors stores bit-identical
        thetas, raising :class:`~repro.errors.CalibrationError` for the
        first route the scalar loop would have failed on.
        """
        survivors: dict[str, TunableDualPolarityTdc] = {}
        unrecovered = 0
        with trace.span(
            "sensor.calibrate", routes=len(self._tdcs), kernel="batched"
        ):
            for name, tdc in self._tdcs.items():
                def _arm(name: str = name) -> None:
                    # The same fault check find_theta_init runs before
                    # its first probe; retried here so the site stream
                    # is consumed exactly as the per-route retry would.
                    maybe_inject(
                        "sensor.calibrate", CalibrationGlitchError,
                        f"route {name!r}: calibration sweep aborted "
                        f"(injected environmental glitch)",
                    )
                try:
                    retry_call(_arm, label=f"sensor.calibrate:{name}")
                except TransientError:
                    unrecovered += 1
                    registry.counter(
                        "calibrations_unrecovered_total",
                        "routes left uncalibrated past the retry budget",
                    ).inc()
                    _log.warning("calibration_unrecovered", route=name)
                    continue
                survivors[name] = tdc
            find_theta_init_bank(survivors, results=self.theta_init)
        _log.info("calibrated", routes=len(self._tdcs) - unrecovered,
                  unrecovered=unrecovered)
        return dict(self.theta_init)

    def use_theta_init(self, theta_init: dict[str, float]) -> None:
        """Adopt a-priori theta_init values (Threat Model 2).

        theta_init "is consistent across all FPGAs of the same type, and
        so capturing it once on any board is sufficient" -- the attacker
        calibrates on a board they own and replays the values here.
        """
        missing = set(self.route_names) - set(theta_init)
        if missing:
            raise ConfigurationError(
                f"theta_init missing for routes: {sorted(missing)}"
            )
        self.theta_init = dict(theta_init)

    def measure_route(
        self, route_name: str, kernel: Optional[str] = None
    ) -> Measurement:
        """The Measurement phase for one route.

        ``kernel`` selects the capture implementation ("batched"/
        "scalar"; ``None`` takes the process default).
        """
        if route_name not in self._tdcs:
            raise ConfigurationError(f"no TDC for route {route_name!r}")
        if route_name not in self.theta_init:
            raise SensorError(
                f"route {route_name!r} is not calibrated; run calibrate() "
                f"or use_theta_init()"
            )
        start = perf_counter()
        with trace.span("sensor.capture", route=route_name,
                        kernel=kernel or get_capture_kernel()):
            measurement = self._tdcs[route_name].measure(
                self.theta_init[route_name], kernel=kernel
            )
        registry.counter(
            "captures_total", "complete TDC measurements taken"
        ).inc()
        registry.histogram(
            "capture_latency_seconds", "host wall time per TDC measurement"
        ).observe(perf_counter() - start)
        registry.histogram(
            "readout_skew_ps",
            "falling-minus-rising delta per capture (dT readout skew)",
        ).observe(measurement.delta_ps)
        return measurement

    def measure_bank(
        self, kernel: Optional[str] = None, recover: bool = False
    ) -> tuple[dict[str, Measurement], list[str]]:
        """Measure every calibrated route in one stacked kernel call.

        Materialises each route's measurement draws sequentially in bank
        order -- the identical generator consumption of a
        :meth:`measure_route` loop -- then resolves the whole board as
        one ``(routes, traces, samples, chain)`` tensor per polarity.

        With ``recover=False`` (the :meth:`measure_all` contract) an
        uncalibrated route raises :class:`SensorError` and a capture
        drop propagates.  With ``recover=True`` (the
        ``measure_with_recovery`` contract) drops retry per route and
        failures degrade: the route lands in the returned ``dropped``
        list instead.  Returns ``(measurements, dropped)``.
        """
        resolved = _check_kernel(kernel or get_capture_kernel())
        if resolved != "batched":
            raise SensorError(
                "measure_bank requires the batched capture kernel; use "
                "measure_route/measure_all for the scalar reference path"
            )
        start = perf_counter()
        ordered: list[tuple[str, TunableDualPolarityTdc, RouteDraws]] = []
        dropped: list[str] = []
        with trace.span(
            "sensor.capture", routes=len(self.routes), kernel=resolved
        ):
            for name in self.route_names:
                if name not in self.theta_init:
                    if not recover:
                        raise SensorError(
                            f"route {name!r} is not calibrated; run "
                            f"calibrate() or use_theta_init()"
                        )
                    dropped.append(name)
                    continue
                tdc = self._tdcs[name]
                theta = self.theta_init[name]
                try:
                    if recover:
                        thetas, times, uniforms = retry_call(
                            tdc.measure_draws, theta,
                            label=f"sensor.capture:{name}",
                        )
                    else:
                        thetas, times, uniforms = tdc.measure_draws(theta)
                except TransientError:
                    if not recover:
                        raise
                    dropped.append(name)
                    continue
                ordered.append((name, tdc, RouteDraws(
                    name=name, theta_init_ps=theta,
                    times=times, uniforms=uniforms,
                )))
            measurements = resolve_bank(
                [tdc for _, tdc, _ in ordered],
                [draws for _, _, draws in ordered],
            )
        elapsed = perf_counter() - start
        if measurements:
            registry.counter(
                "captures_total", "complete TDC measurements taken"
            ).inc(len(measurements))
            latency = registry.histogram(
                "capture_latency_seconds",
                "host wall time per TDC measurement",
            )
            skew = registry.histogram(
                "readout_skew_ps",
                "falling-minus-rising delta per capture (dT readout skew)",
            )
            share = elapsed / len(measurements)
            for measurement in measurements.values():
                # The bank resolves as one call, so per-route latency is
                # the amortised share of the bank's wall time.
                latency.observe(share)
                skew.observe(measurement.delta_ps)
        return measurements, dropped

    def measure_all(
        self, kernel: Optional[str] = None
    ) -> dict[str, Measurement]:
        """Measure every route; the whole pass takes under a minute.

        Routes through the bank-level stacked kernel when the capture
        kernel is "batched"; the scalar kernel keeps the per-route
        reference loop.
        """
        if _check_kernel(kernel or get_capture_kernel()) == "batched":
            measurements, _ = self.measure_bank(kernel="batched")
            return measurements
        return {
            name: self.measure_route(name, kernel=kernel)
            for name in self.route_names
        }

    def measurement_duration_hours(self) -> float:
        """Simulated wall-clock cost of one measure_all pass."""
        return len(self.routes) * MEASUREMENT_SECONDS_PER_ROUTE / 3600.0


def build_measure_design(
    part: PartDescriptor,
    routes: Sequence[Route],
    name: str = "measure",
) -> MeasureDesign:
    """Compile a Measure design over an existing route bank.

    Per route: a transition-generator flip-flop at the route's start, a
    64-element carry chain (eight CARRY8s) at its end, and 64 capture
    flip-flops.  The route nets are configured but only carry sparse
    measurement edges (FLOATING activity), so loading the Measure design
    does not itself meaningfully stress the routes -- measurement is
    "fast, taking less than a minute" per pass.
    """
    grid = part.make_grid()
    netlist = Netlist(name=name)
    placer = FixedPlacer(grid)
    for route in routes:
        start, end = route.endpoints
        launch = netlist.add_cell(
            Cell(name=f"{route.name}_launch_ff", cell_type=CellType.FLIP_FLOP)
        )
        placer.place_at(
            launch.name,
            CellType.FLIP_FLOP,
            placer.nearest_tile(start, CellType.FLIP_FLOP),
        )
        chain_cells = []
        for i in range(_CARRIES_PER_CHAIN):
            carry = netlist.add_cell(
                Cell(name=f"{route.name}_carry{i}", cell_type=CellType.CARRY8)
            )
            tile = placer.nearest_tile(end.offset(0, i), CellType.CARRY8)
            placer.place_at(carry.name, CellType.CARRY8, tile)
            chain_cells.append(carry.name)
        netlist.add_net(
            Net(
                name=route.name,
                driver=launch.name,
                sinks=(chain_cells[0],),
                activity=NetActivity.FLOATING,
            ).with_route(route)
        )
        for upstream, downstream in zip(chain_cells, chain_cells[1:]):
            netlist.add_net(
                Net(
                    name=f"{upstream}_to_{downstream}",
                    driver=upstream,
                    sinks=(downstream,),
                    activity=NetActivity.FLOATING,
                )
            )
    bitstream = Bitstream.compile(netlist, placer.placement)
    return MeasureDesign(bitstream=bitstream, routes=tuple(routes))
