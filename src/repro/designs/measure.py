"""The Measure design (Figure 5 of the paper).

An array of Tunable Dual-Polarity TDC sensors, one per route under test,
placed in the region the Target design left uninitialised.  The routes
themselves are the same physical segments the Target design used
(identical routing constraints), so the sensors read the analog state
the victim's data left behind.

Because sensing happens at runtime on a specific physical device, the
compiled :class:`MeasureDesign` is *attached* to a device after loading,
yielding a :class:`MeasureSession` that owns the per-route TDC instances
and implements the Calibration and Measurement phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

from repro.errors import ConfigurationError, SensorError, TransientError
from repro.observability import trace
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.retry import retry_call
from repro.fabric.bitstream import Bitstream
from repro.fabric.device import FpgaDevice
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.parts import PartDescriptor
from repro.fabric.placement import FixedPlacer
from repro.fabric.routing import Route
from repro.rng import SeedLike, make_rng
from repro.sensor.calibration import find_theta_init
from repro.sensor.noise import CLOUD_NOISE, NoiseModel
from repro.sensor.tdc import (
    Measurement,
    TunableDualPolarityTdc,
    get_capture_kernel,
)

#: CARRY8 primitives per 64-element chain (eight 8-bit carries).
_CARRIES_PER_CHAIN = 8

#: Wall-clock cost of measuring one route (traces, readout, tuning); the
#: paper reports ~52 s for 64 routes, i.e. well under a minute total.
MEASUREMENT_SECONDS_PER_ROUTE = 0.8

_log = get_logger("designs.measure")


@dataclass(frozen=True)
class MeasureDesign:
    """A compiled Measure design: TDC array over a route bank."""

    bitstream: Bitstream
    routes: tuple[Route, ...]

    def attach(
        self,
        device: FpgaDevice,
        noise: NoiseModel = CLOUD_NOISE,
        seed: SeedLike = None,
    ) -> "MeasureSession":
        """Bind the sensor array to a device the design is loaded on."""
        if device.loaded_design is None or (
            device.loaded_design.bitstream_id != self.bitstream.bitstream_id
        ):
            raise SensorError(
                "measure design must be loaded on the device before attaching"
            )
        return MeasureSession(
            device=device, routes=self.routes, noise=noise, seed=seed
        )


@dataclass
class MeasureSession:
    """Runtime sensing session: one TDC per route on one device."""

    device: FpgaDevice
    routes: tuple[Route, ...]
    noise: NoiseModel = CLOUD_NOISE
    seed: SeedLike = None
    theta_init: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        rng = make_rng(self.seed)
        self._tdcs = {
            route.name: TunableDualPolarityTdc(
                device=self.device, route=route, noise=self.noise, seed=rng
            )
            for route in self.routes
        }

    @property
    def route_names(self) -> tuple[str, ...]:
        """Names of the routes under test, in bank order."""
        return tuple(route.name for route in self.routes)

    def calibrate(self, kernel: Optional[str] = None) -> dict[str, float]:
        """The Calibration phase: find and store theta_init per route.

        ``kernel`` selects the capture implementation per probe trace
        ("batched"/"scalar"; ``None`` takes the process default).
        """
        unrecovered = 0
        for name, tdc in self._tdcs.items():
            with trace.span("sensor.calibrate", route=name):
                try:
                    self.theta_init[name] = retry_call(
                        find_theta_init, tdc, kernel=kernel,
                        label=f"sensor.calibrate:{name}",
                    )
                except TransientError:
                    # Glitch past the retry budget: the route stays
                    # uncalibrated and downstream passes skip it.
                    unrecovered += 1
                    registry.counter(
                        "calibrations_unrecovered_total",
                        "routes left uncalibrated past the retry budget",
                    ).inc()
                    _log.warning("calibration_unrecovered", route=name)
                    continue
            registry.counter(
                "calibrations_total", "routes calibrated from scratch"
            ).inc()
        _log.info("calibrated", routes=len(self._tdcs) - unrecovered,
                  unrecovered=unrecovered)
        return dict(self.theta_init)

    def use_theta_init(self, theta_init: dict[str, float]) -> None:
        """Adopt a-priori theta_init values (Threat Model 2).

        theta_init "is consistent across all FPGAs of the same type, and
        so capturing it once on any board is sufficient" -- the attacker
        calibrates on a board they own and replays the values here.
        """
        missing = set(self.route_names) - set(theta_init)
        if missing:
            raise ConfigurationError(
                f"theta_init missing for routes: {sorted(missing)}"
            )
        self.theta_init = dict(theta_init)

    def measure_route(
        self, route_name: str, kernel: Optional[str] = None
    ) -> Measurement:
        """The Measurement phase for one route.

        ``kernel`` selects the capture implementation ("batched"/
        "scalar"; ``None`` takes the process default).
        """
        if route_name not in self._tdcs:
            raise ConfigurationError(f"no TDC for route {route_name!r}")
        if route_name not in self.theta_init:
            raise SensorError(
                f"route {route_name!r} is not calibrated; run calibrate() "
                f"or use_theta_init()"
            )
        start = perf_counter()
        with trace.span("sensor.capture", route=route_name,
                        kernel=kernel or get_capture_kernel()):
            measurement = self._tdcs[route_name].measure(
                self.theta_init[route_name], kernel=kernel
            )
        registry.counter(
            "captures_total", "complete TDC measurements taken"
        ).inc()
        registry.histogram(
            "capture_latency_seconds", "host wall time per TDC measurement"
        ).observe(perf_counter() - start)
        registry.histogram(
            "readout_skew_ps",
            "falling-minus-rising delta per capture (dT readout skew)",
        ).observe(measurement.delta_ps)
        return measurement

    def measure_all(
        self, kernel: Optional[str] = None
    ) -> dict[str, Measurement]:
        """Measure every route; the whole pass takes under a minute."""
        return {
            name: self.measure_route(name, kernel=kernel)
            for name in self.route_names
        }

    def measurement_duration_hours(self) -> float:
        """Simulated wall-clock cost of one measure_all pass."""
        return len(self.routes) * MEASUREMENT_SECONDS_PER_ROUTE / 3600.0


def build_measure_design(
    part: PartDescriptor,
    routes: Sequence[Route],
    name: str = "measure",
) -> MeasureDesign:
    """Compile a Measure design over an existing route bank.

    Per route: a transition-generator flip-flop at the route's start, a
    64-element carry chain (eight CARRY8s) at its end, and 64 capture
    flip-flops.  The route nets are configured but only carry sparse
    measurement edges (FLOATING activity), so loading the Measure design
    does not itself meaningfully stress the routes -- measurement is
    "fast, taking less than a minute" per pass.
    """
    grid = part.make_grid()
    netlist = Netlist(name=name)
    placer = FixedPlacer(grid)
    for route in routes:
        start, end = route.endpoints
        launch = netlist.add_cell(
            Cell(name=f"{route.name}_launch_ff", cell_type=CellType.FLIP_FLOP)
        )
        placer.place_at(
            launch.name,
            CellType.FLIP_FLOP,
            placer.nearest_tile(start, CellType.FLIP_FLOP),
        )
        chain_cells = []
        for i in range(_CARRIES_PER_CHAIN):
            carry = netlist.add_cell(
                Cell(name=f"{route.name}_carry{i}", cell_type=CellType.CARRY8)
            )
            tile = placer.nearest_tile(end.offset(0, i), CellType.CARRY8)
            placer.place_at(carry.name, CellType.CARRY8, tile)
            chain_cells.append(carry.name)
        netlist.add_net(
            Net(
                name=route.name,
                driver=launch.name,
                sinks=(chain_cells[0],),
                activity=NetActivity.FLOATING,
            ).with_route(route)
        )
        for upstream, downstream in zip(chain_cells, chain_cells[1:]):
            netlist.add_net(
                Net(
                    name=f"{upstream}_to_{downstream}",
                    driver=upstream,
                    sinks=(downstream,),
                    activity=NetActivity.FLOATING,
                )
            )
    bitstream = Bitstream.compile(netlist, placer.placement)
    return MeasureDesign(bitstream=bitstream, routes=tuple(routes))
