"""The paper's two experimental FPGA designs (Section 5.1).

* the **Target** design (:mod:`repro.designs.target`) -- holds the
  routes under test at constant burn values, surrounded by
  arithmetic-heavy heater circuits (:mod:`repro.designs.arithmetic`);
* the **Measure** design (:mod:`repro.designs.measure`) -- an array of
  TDC sensors bound to the *same physical routes* via identical routing
  constraints.

Both are built around a shared route bank
(:func:`repro.designs.routes.build_route_bank`), which realises the
"identical routing constraints from the Target design are used to
generate the routes for the Measure design" requirement structurally.
"""

from repro.designs.arithmetic import build_fma_array
from repro.designs.measure import MeasureDesign, MeasureSession, build_measure_design
from repro.designs.routes import build_route_bank
from repro.designs.target import TargetDesign, build_target_design

__all__ = [
    "MeasureDesign",
    "MeasureSession",
    "TargetDesign",
    "build_fma_array",
    "build_measure_design",
    "build_route_bank",
    "build_target_design",
]
