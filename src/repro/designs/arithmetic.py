"""Arithmetic-heavy heater circuits.

The Target design surrounds the routes under test with "arrays of logic
performing a pipelined fused multiply-add operation (similar to a
machine learning or lattice cryptography accelerator)", which emulates
realistic surrounding computation and -- deliberately -- heats the die
to accelerate BTI.  Experiment 2's instance uses 3896 DSPs and draws
63 W against the 85 W AWS cap.

Each FMA unit is one DSP48 plus pipeline registers and operand LUTs,
with toggling operand/result nets routed locally at the unit's tile.
"""

from __future__ import annotations

from repro.errors import PlacementError
from repro.fabric.geometry import Coordinate, TileType
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.placement import FixedPlacer, SITES_PER_TILE
from repro.fabric.routing import Route, SegmentId
from repro.fabric.segments import SegmentKind


def build_fma_array(
    netlist: Netlist,
    placer: FixedPlacer,
    dsp_count: int,
    avoid_columns: frozenset[int] = frozenset(),
    prefix: str = "fma",
) -> int:
    """Add a pipelined FMA array of ``dsp_count`` units to a netlist.

    Units fill DSP tiles column-major, skipping ``avoid_columns`` (the
    region reserved for the routes under test and the Measure design's
    future carry chains -- the Target design's keep-out).  Returns the
    number of units actually placed; raises :class:`PlacementError` if
    fewer than ``dsp_count`` DSP sites are available.
    """
    if dsp_count < 0:
        raise PlacementError(f"dsp_count must be >= 0, got {dsp_count}")
    placed = 0
    grid = placer.grid
    for coord in grid.user_tiles(TileType.DSP):
        if placed >= dsp_count:
            break
        if coord.x in avoid_columns:
            continue
        for site_index in range(SITES_PER_TILE[CellType.DSP48]):
            if placed >= dsp_count:
                break
            _add_fma_unit(netlist, placer, coord, f"{prefix}{placed}")
            placed += 1
    if placed < dsp_count:
        raise PlacementError(
            f"only {placed} of {dsp_count} requested DSP sites available"
        )
    return placed


def _add_fma_unit(
    netlist: Netlist, placer: FixedPlacer, coord: Coordinate, name: str
) -> None:
    """One FMA unit: DSP48 + operand register, with toggling nets."""
    dsp = netlist.add_cell(Cell(name=f"{name}_dsp", cell_type=CellType.DSP48))
    reg = netlist.add_cell(Cell(name=f"{name}_reg", cell_type=CellType.FLIP_FLOP))
    placer.place_at(dsp.name, CellType.DSP48, coord)
    reg_tile = placer.nearest_tile(coord, CellType.FLIP_FLOP)
    placer.place_at(reg.name, CellType.FLIP_FLOP, reg_tile)
    # Operand and result nets toggle with typical datapath activity.
    operand_route = Route(
        name=f"{name}_op_route",
        segments=(SegmentId(SegmentKind.LOCAL, reg_tile, track=_local_track(netlist)),),
    )
    netlist.add_net(
        Net(
            name=f"{name}_op",
            driver=reg.name,
            sinks=(dsp.name,),
            activity=NetActivity.TOGGLING,
            duty_high=0.5,
        ).with_route(operand_route)
    )
    netlist.add_net(
        Net(
            name=f"{name}_acc",
            driver=dsp.name,
            sinks=(reg.name,),
            activity=NetActivity.TOGGLING,
            duty_high=0.5,
        )
    )


def _local_track(netlist: Netlist) -> int:
    """A unique local-hop track index per heater net.

    LOCAL hops are per-pin resources; indexing them by the running net
    count keeps heater units from sharing segments without consulting
    the global track allocator (heater segments never carry data the
    attack cares about).
    """
    return 1000 + len(netlist.nets)
