"""Shared route banks for the Target and Measure designs.

The experiments specify their routes by nominal delay (sixteen each of
1000, 2000, 5000 and 10000 ps).  A route bank realises those routes once
on the fabric; the Target and Measure designs then both reference the
*same* physical segments, which is the paper's "identical routing
constraints" requirement and the reason the attacker's sensor observes
the victim's transistors.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import RoutingError
from repro.fabric.geometry import Coordinate, FabricGrid
from repro.fabric.router import DelayTargetRouter
from repro.fabric.routing import Route, validate_disjoint

#: The paper's standard experiment: 16 routes of each length.
PAPER_ROUTE_LENGTHS_PS: tuple[int, ...] = tuple(
    [10000] * 16 + [5000] * 16 + [2000] * 16 + [1000] * 16
)


def build_route_bank(
    grid: FabricGrid,
    lengths_ps: Sequence[float] = PAPER_ROUTE_LENGTHS_PS,
    tracks_per_class: int = 12,
    names: Optional[Sequence[str]] = None,
    column_stride: int = 2,
) -> list[Route]:
    """Route a bank of delay-targeted routes, physically disjoint.

    Routes are anchored round-robin across evenly spaced columns with
    the longest routes first (they serpentine into neighbouring columns,
    so giving them first pick of track capacity avoids congestion).
    Anchors stay in the western third of the die so that the Target
    design's heaters keep whole DSP columns outside the route keep-out.
    Returned routes are in the *caller's* length order, with names
    ``rut[i]`` by default ("route under test").
    """
    if not lengths_ps:
        raise RoutingError("route bank needs at least one length")
    if names is not None and len(names) != len(lengths_ps):
        raise RoutingError("names and lengths must align")
    n_anchor_cols = min(max((grid.columns - 4) // column_stride, 1), 16)
    router = DelayTargetRouter(grid, tracks_per_class=tracks_per_class)
    order = sorted(
        range(len(lengths_ps)), key=lambda i: -float(lengths_ps[i])
    )
    routes: list[Optional[Route]] = [None] * len(lengths_ps)
    for rank, index in enumerate(order):
        name = names[index] if names is not None else f"rut[{index}]"
        anchor = Coordinate(
            (rank % n_anchor_cols) * column_stride, grid.shell_rows
        )
        routes[index] = router.route(name, anchor, float(lengths_ps[index]))
    result = [route for route in routes if route is not None]
    validate_disjoint(result)
    return result
