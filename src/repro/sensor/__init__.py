"""The Tunable Dual-Polarity time-to-digital converter (TDC) sensor.

Implements the measurement pipeline of Section 4 of the paper, end to
end and discretely:

* a programmable phase ``theta`` between the launch and capture clocks
  (:mod:`repro.sensor.clocking`);
* a transition generator that sends rising and falling edges through the
  route under test (:mod:`repro.sensor.transition`);
* a 64-element carry-chain delay line with per-bin mismatch
  (:mod:`repro.sensor.carry_chain`);
* capture registers with boundary metastability
  (:mod:`repro.sensor.capture`);
* Binary-Hamming-distance post-processing and the 2.8 ps/bit conversion
  (:mod:`repro.sensor.postprocess`);
* the theta_init calibration search (:mod:`repro.sensor.calibration`);
* lab vs. cloud noise environments (:mod:`repro.sensor.noise`);
* the prior-work ring-oscillator sensor baseline, which cloud DRC
  rejects (:mod:`repro.sensor.ro`).
"""

from repro.sensor.calibration import find_theta_init
from repro.sensor.carry_chain import CarryChain
from repro.sensor.clocking import PhaseGenerator
from repro.sensor.noise import NoiseModel, LAB_NOISE, CLOUD_NOISE
from repro.sensor.postprocess import (
    batch_delta_ps,
    batch_hamming_distances,
    batch_trace_mean_distances,
    binary_hamming_distance,
    trace_mean_distance,
)
from repro.sensor.tdc import (
    CAPTURE_KERNELS,
    Measurement,
    TunableDualPolarityTdc,
    capture_kernel,
    get_capture_kernel,
    set_capture_kernel,
)
from repro.sensor.trace import Trace, Polarity
from repro.sensor.ro import RingOscillatorSensor, build_ro_netlist

__all__ = [
    "CAPTURE_KERNELS",
    "CLOUD_NOISE",
    "CarryChain",
    "LAB_NOISE",
    "Measurement",
    "NoiseModel",
    "PhaseGenerator",
    "Polarity",
    "RingOscillatorSensor",
    "Trace",
    "TunableDualPolarityTdc",
    "batch_delta_ps",
    "batch_hamming_distances",
    "batch_trace_mean_distances",
    "binary_hamming_distance",
    "build_ro_netlist",
    "capture_kernel",
    "find_theta_init",
    "get_capture_kernel",
    "set_capture_kernel",
    "trace_mean_distance",
]
