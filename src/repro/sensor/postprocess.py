"""Post-processing: from capture words to a delay estimate.

Implements the paper's pipeline exactly:

1. each capture word reduces to its **Binary Hamming Distance** -- for
   rising transitions, the distance from the all-zeros word (i.e. the
   number of ones); for falling transitions, the distance from the
   all-ones word (the number of zeros);
2. the mean distance over the samples of a trace;
3. the mean over the ten traces of a measurement;
4. falling minus rising, converted to picoseconds with the part's
   2.8 ps/bit carry-bin constant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SensorError
from repro.sensor.trace import Polarity, Trace


def binary_hamming_distance(word: np.ndarray, polarity: Polarity) -> int:
    """Hamming distance of one capture word from its polarity reference.

    Rising words are compared against all-zeros; falling words against
    all-ones.  Either way the result counts how far the transition
    propagated, in chain elements.
    """
    if word.ndim != 1 or word.dtype != np.bool_:
        raise SensorError("capture word must be a 1-D boolean array")
    if polarity is Polarity.RISING:
        return int(np.count_nonzero(word))
    return int(word.size - np.count_nonzero(word))


def trace_mean_distance(trace: Trace) -> float:
    """Mean Binary Hamming Distance over the samples of one trace."""
    if trace.polarity is Polarity.RISING:
        counts = np.count_nonzero(trace.words, axis=1)
    else:
        counts = trace.words.shape[1] - np.count_nonzero(trace.words, axis=1)
    return float(np.mean(counts))


def traces_mean_distance(traces: Sequence[Trace]) -> float:
    """Mean over traces of the per-trace mean distance."""
    if not traces:
        raise SensorError("need at least one trace")
    return float(np.mean([trace_mean_distance(t) for t in traces]))


def batch_hamming_distances(
    words: np.ndarray, polarity: Polarity
) -> np.ndarray:
    """Binary Hamming Distances over a stacked word tensor.

    ``words`` is a boolean array whose last axis is the chain taps (a
    measurement stacks to ``(traces, samples, chain_length)``); the
    result drops that axis, one distance per capture word.
    """
    if words.ndim < 1 or words.dtype != np.bool_:
        raise SensorError("batched words must be a boolean array")
    counts = np.count_nonzero(words, axis=-1)
    if polarity is Polarity.RISING:
        return counts
    return words.shape[-1] - counts


def batch_trace_mean_distances(
    words: np.ndarray, polarity: Polarity
) -> np.ndarray:
    """Per-trace mean distance over a ``(traces, samples, chain)`` tensor.

    The reduction order (mean over samples within a trace, traces kept
    separate) mirrors :func:`trace_mean_distance` applied per trace, so
    the floats agree bit for bit with the scalar pipeline.
    """
    if words.ndim != 3:
        raise SensorError(
            f"batched trace words must be 3-D (traces x samples x chain), "
            f"got shape {words.shape}"
        )
    return batch_hamming_distances(words, polarity).mean(axis=-1)


def bank_trace_mean_distances(
    words: np.ndarray, polarity: Polarity
) -> np.ndarray:
    """Per-trace mean distances over a bank-stacked word tensor.

    ``words`` is ``(..., traces, samples, chain)`` -- a whole board's
    measurement adds a leading routes axis.  Each route's reduction is
    independent of the others (the mean runs over the samples axis only),
    so every row agrees bit for bit with
    :func:`batch_trace_mean_distances` applied to that route alone.
    """
    if words.ndim < 3:
        raise SensorError(
            f"bank trace words need >= 3 dims (... x traces x samples x "
            f"chain), got shape {words.shape}"
        )
    return batch_hamming_distances(words, polarity).mean(axis=-1)


def batch_delta_ps(
    rising_words: np.ndarray, falling_words: np.ndarray, bin_ps: float
) -> float:
    """:func:`delta_ps_from_traces` on stacked word tensors."""
    if bin_ps <= 0.0:
        raise SensorError(f"bin width must be positive, got {bin_ps}")
    distance_difference = float(
        np.mean(batch_trace_mean_distances(rising_words, Polarity.RISING))
    ) - float(
        np.mean(batch_trace_mean_distances(falling_words, Polarity.FALLING))
    )
    return distance_difference * bin_ps


def delta_ps_from_traces(
    rising: Sequence[Trace],
    falling: Sequence[Trace],
    bin_ps: float,
) -> float:
    """The paper's single-measurement observable.

    Propagation *distance* shrinks as delay grows (the edge enters the
    chain later), so the rising-minus-falling distance difference times
    the bin width gives falling-minus-rising *delay* in picoseconds.
    """
    if bin_ps <= 0.0:
        raise SensorError(f"bin width must be positive, got {bin_ps}")
    distance_difference = traces_mean_distance(rising) - traces_mean_distance(
        falling
    )
    return distance_difference * bin_ps
