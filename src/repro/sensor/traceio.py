"""Raw-trace archives: the bridge between simulation and hardware.

A hardware deployment of the attack logs exactly what the simulated TDC
produces: capture-register words per trace, per polarity, per theta
setting.  :class:`MeasurementRecord` captures that unit;
:func:`save_trace_archive` / :func:`load_trace_archive` persist batches
of records as NPZ, and :func:`record_to_measurement` /
:func:`records_to_series` replay the paper's post-processing over
archived words -- so the entire downstream pipeline (centring, kernel
smoothing, classifiers, SPRT) is source-agnostic: feed it simulated
archives today, real-silicon archives tomorrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.errors import AnalysisError, SensorError
from repro.analysis.timeseries import DeltaPsSeries
from repro.sensor.postprocess import delta_ps_from_traces, traces_mean_distance
from repro.sensor.tdc import Measurement
from repro.sensor.trace import Polarity, Trace

PathLike = Union[str, Path]

#: Archive format marker.
ARCHIVE_VERSION = 1


@dataclass(frozen=True)
class MeasurementRecord:
    """One measurement's raw material.

    Attributes:
        route_name: the route under test.
        nominal_delay_ps: its nominal delay (for length grouping).
        hour: experiment time of the measurement.
        theta_init_ps: phase setting the sweep started from.
        bin_ps: the carry chain's nominal bin width.
        rising / falling: traces per polarity.
    """

    route_name: str
    nominal_delay_ps: float
    hour: float
    theta_init_ps: float
    bin_ps: float
    rising: tuple[Trace, ...]
    falling: tuple[Trace, ...]

    def __post_init__(self) -> None:
        if not self.rising or not self.falling:
            raise SensorError("a record needs traces for both polarities")


def record_to_measurement(record: MeasurementRecord) -> Measurement:
    """Replay the paper's post-processing over one archived record."""
    delta = delta_ps_from_traces(
        list(record.rising), list(record.falling), record.bin_ps
    )
    return Measurement(
        route_name=record.route_name,
        theta_init_ps=record.theta_init_ps,
        rising_distance=traces_mean_distance(list(record.rising)),
        falling_distance=traces_mean_distance(list(record.falling)),
        delta_ps=delta,
    )


def records_to_series(records: Sequence[MeasurementRecord]) -> DeltaPsSeries:
    """Replay a time-ordered run of records into a delta-ps series."""
    if not records:
        raise AnalysisError("no records to replay")
    names = {record.route_name for record in records}
    if len(names) != 1:
        raise AnalysisError(
            f"records span multiple routes: {sorted(names)}"
        )
    ordered = sorted(records, key=lambda r: r.hour)
    series = DeltaPsSeries(
        route_name=ordered[0].route_name,
        nominal_delay_ps=ordered[0].nominal_delay_ps,
    )
    for record in ordered:
        series.append(record.hour, record_to_measurement(record).delta_ps)
    return series


def save_trace_archive(
    records: Sequence[MeasurementRecord], path: PathLike
) -> Path:
    """Persist records as a single compressed NPZ archive."""
    if not records:
        raise AnalysisError("no records to archive")
    arrays = {"__version__": np.array([ARCHIVE_VERSION])}
    meta = []
    for index, record in enumerate(records):
        meta.append((
            record.route_name,
            record.nominal_delay_ps,
            record.hour,
            record.theta_init_ps,
            record.bin_ps,
            len(record.rising),
            len(record.falling),
        ))
        for pol_name, traces in (("r", record.rising), ("f", record.falling)):
            arrays[f"words_{index}_{pol_name}"] = np.stack(
                [trace.words for trace in traces]
            )
            arrays[f"thetas_{index}_{pol_name}"] = np.array(
                [trace.theta_ps for trace in traces]
            )
    arrays["__meta__"] = np.array(
        meta,
        dtype=[
            ("route", "U64"), ("delay", "f8"), ("hour", "f8"),
            ("theta_init", "f8"), ("bin", "f8"),
            ("n_rising", "i8"), ("n_falling", "i8"),
        ],
    )
    target = Path(path)
    np.savez_compressed(target, **arrays)
    return target if target.suffix == ".npz" else target.with_suffix(
        target.suffix + ".npz"
    )


def load_trace_archive(path: PathLike) -> list[MeasurementRecord]:
    """Load records back from :func:`save_trace_archive` output."""
    source = Path(path)
    if not source.exists():
        raise AnalysisError(f"no archive at {source}")
    data = np.load(source, allow_pickle=False)
    version = int(data["__version__"][0])
    if version != ARCHIVE_VERSION:
        raise AnalysisError(
            f"unsupported trace archive version {version}"
        )
    records = []
    for index, row in enumerate(data["__meta__"]):
        def traces_for(pol_name, polarity, count):
            """Rebuild one polarity's traces from the arrays."""
            words = data[f"words_{index}_{pol_name}"]
            thetas = data[f"thetas_{index}_{pol_name}"]
            if words.shape[0] != count:
                raise AnalysisError(f"record {index}: trace count mismatch")
            return tuple(
                Trace(
                    polarity=polarity,
                    theta_ps=float(thetas[k]),
                    words=words[k].astype(bool),
                )
                for k in range(count)
            )

        records.append(
            MeasurementRecord(
                route_name=str(row["route"]),
                nominal_delay_ps=float(row["delay"]),
                hour=float(row["hour"]),
                theta_init_ps=float(row["theta_init"]),
                bin_ps=float(row["bin"]),
                rising=traces_for("r", Polarity.RISING, int(row["n_rising"])),
                falling=traces_for("f", Polarity.FALLING, int(row["n_falling"])),
            )
        )
    return records
