"""TDC calibration: finding theta_init per route.

The Calibration phase (Section 5.2): starting from a large phase offset,
``theta`` is iteratively reduced, taking a short 2^4-sample trace at each
setting, until both the rising and the falling transition land inside
the carry chain's capture window.  The resulting ``theta_init`` centres
the slower transition mid-chain so that subsequent drift in either
direction stays on-scale.

The paper also notes (Experiment 3) that theta_init is consistent across
devices of the same part, so an attacker can calibrate once on any board
they control and reuse the value -- :func:`find_theta_init` is therefore
deliberately independent of device identity beyond the part's timing.
"""

from __future__ import annotations

from repro.errors import CalibrationError, CalibrationGlitchError
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.faults import maybe_inject
from repro.sensor.postprocess import trace_mean_distance
from repro.sensor.tdc import TunableDualPolarityTdc
from repro.sensor.trace import Polarity

_log = get_logger("sensor.calibration")

#: Acceptable window for the mean propagation distance at theta_init,
#: in chain elements: keeps headroom for drift in both directions.
_TARGET_LOW = 20.0
_TARGET_HIGH = 44.0


def _mean_positions(
    tdc: TunableDualPolarityTdc, theta_ps: float, kernel: str = None
) -> tuple[float, float]:
    rising = trace_mean_distance(
        tdc.capture_trace(theta_ps, Polarity.RISING, kernel=kernel)
    )
    falling = trace_mean_distance(
        tdc.capture_trace(theta_ps, Polarity.FALLING, kernel=kernel)
    )
    return rising, falling


def find_theta_init(
    tdc: TunableDualPolarityTdc,
    theta_start_ps: float = None,
    coarse_step_ps: float = None,
    kernel: str = None,
) -> float:
    """Search downward from a large theta until transitions are centred.

    Returns the theta_init to use for this route's measurements.  Raises
    :class:`CalibrationError` if no setting lands both polarities inside
    the capture window (e.g. the route is far longer than the
    programmable phase range).

    Every probe trace routes through the capture kernel selected by
    ``kernel`` (``None`` takes the process default, normally the batched
    kernel), so calibration scales with the same vectorised path as the
    measurement phase.
    """
    # Chaos fault site: a glitched sweep aborts before the first probe
    # trace, so the re-run consumes the identical noise sequence.
    maybe_inject(
        "sensor.calibrate", CalibrationGlitchError,
        f"route {tdc.route.name!r}: calibration sweep aborted "
        f"(injected environmental glitch)",
    )
    phase = tdc.phase
    if theta_start_ps is None:
        # The attacker knows the route skeleton (Assumption 1), hence its
        # nominal delay; starting the descent just above it saves most of
        # the sweep without changing the result.
        from repro.sensor.transition import NOMINAL_INSERTION_DELAY_PS

        theta_start_ps = min(
            tdc.route.nominal_delay_ps
            + NOMINAL_INSERTION_DELAY_PS
            + tdc.chain.nominal_bin_ps * tdc.chain_length
            + 600.0,
            phase.max_ps,
        )
    start = theta_start_ps
    coarse = coarse_step_ps if coarse_step_ps is not None else (
        tdc.chain.nominal_bin_ps * tdc.chain_length / 4.0
    )
    theta = phase.quantise(start)

    # Coarse descent: stop when either transition is inside the window.
    while theta > 0.0:
        rising, falling = _mean_positions(tdc, theta, kernel)
        if rising < float(tdc.chain_length) or falling < float(tdc.chain_length):
            break
        theta = max(theta - coarse, 0.0)
    else:
        registry.counter(
            "calibration_failures_total", "routes that failed calibration"
        ).inc()
        _log.error("calibration_failed", route=tdc.route.name,
                   reason="never_entered_chain")
        raise CalibrationError(
            f"route {tdc.route.name!r}: transitions never entered the chain"
        )

    # Fine descent: centre the mean of both polarities in the window.
    # Every probe beyond the first is a retry at a reduced theta.
    best_theta = None
    fine = phase.step_ps
    probes = int(2.0 * coarse / fine) + tdc.chain_length
    retries = 0
    for attempt in range(probes):
        rising, falling = _mean_positions(tdc, theta, kernel)
        centre = (rising + falling) / 2.0
        if _TARGET_LOW <= centre <= _TARGET_HIGH and min(rising, falling) > 4.0:
            best_theta = theta
            retries = attempt
            break
        if max(rising, falling) <= _TARGET_LOW:
            retries = attempt
            break
        theta -= fine
        if theta < 0.0:
            retries = attempt
            break
    else:
        retries = probes
    registry.counter(
        "calibration_retries_total",
        "fine-descent probes re-taken beyond the first per route",
    ).inc(retries)
    if best_theta is None:
        registry.counter(
            "calibration_failures_total", "routes that failed calibration"
        ).inc()
        _log.error("calibration_failed", route=tdc.route.name,
                   reason="could_not_centre")
        raise CalibrationError(
            f"route {tdc.route.name!r}: could not centre transitions "
            f"in the capture window"
        )
    _log.debug("calibrated_route", route=tdc.route.name,
               theta_init_ps=best_theta, retries=retries)
    return best_theta
