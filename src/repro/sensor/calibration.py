"""TDC calibration: finding theta_init per route.

The Calibration phase (Section 5.2): starting from a large phase offset,
``theta`` is iteratively reduced, taking a short 2^4-sample trace at each
setting, until both the rising and the falling transition land inside
the carry chain's capture window.  The resulting ``theta_init`` centres
the slower transition mid-chain so that subsequent drift in either
direction stays on-scale.

The paper also notes (Experiment 3) that theta_init is consistent across
devices of the same part, so an attacker can calibrate once on any board
they control and reuse the value -- :func:`find_theta_init` is therefore
deliberately independent of device identity beyond the part's timing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from repro.errors import CalibrationError, CalibrationGlitchError, SensorError
from repro.observability.log import get_logger
from repro.observability.metrics import registry
from repro.reliability.faults import maybe_inject
from repro.sensor.postprocess import trace_mean_distance
from repro.sensor.tdc import TunableDualPolarityTdc
from repro.sensor.trace import Polarity

_log = get_logger("sensor.calibration")

#: Acceptable window for the mean propagation distance at theta_init,
#: in chain elements: keeps headroom for drift in both directions.
_TARGET_LOW = 20.0
_TARGET_HIGH = 44.0

#: Calibration kernels: "batched" runs every route's downward scan in
#: lockstep, resolving each probe round as one stacked tensor; "scalar"
#: is the sequential per-route reference scan the equivalence tests pin
#: the lockstep kernel against.
CALIBRATION_KERNELS = ("batched", "scalar")

_default_calibration_kernel = os.environ.get(
    "REPRO_CALIBRATION_KERNEL", "batched"
)
if _default_calibration_kernel not in CALIBRATION_KERNELS:
    _default_calibration_kernel = "batched"


def _check_calibration_kernel(kernel: str) -> str:
    if kernel not in CALIBRATION_KERNELS:
        raise SensorError(
            f"unknown calibration kernel {kernel!r}; choose from "
            f"{CALIBRATION_KERNELS}"
        )
    return kernel


def get_calibration_kernel() -> str:
    """The process-wide default calibration kernel."""
    return _default_calibration_kernel


def set_calibration_kernel(kernel: str) -> str:
    """Select the process-wide default calibration kernel.

    Returns the previous default so callers can restore it; benchmarks
    and the equivalence suite use :func:`calibration_kernel` instead.
    """
    global _default_calibration_kernel
    previous = _default_calibration_kernel
    _default_calibration_kernel = _check_calibration_kernel(kernel)
    return previous


@contextmanager
def calibration_kernel(kernel: str) -> Iterator[str]:
    """Temporarily force every calibration through one kernel."""
    previous = set_calibration_kernel(kernel)
    try:
        yield kernel
    finally:
        set_calibration_kernel(previous)


def _default_start_ps(tdc: TunableDualPolarityTdc) -> float:
    # The attacker knows the route skeleton (Assumption 1), hence its
    # nominal delay; starting the descent just above it saves most of
    # the sweep without changing the result.
    from repro.sensor.transition import NOMINAL_INSERTION_DELAY_PS

    return min(
        tdc.route.nominal_delay_ps
        + NOMINAL_INSERTION_DELAY_PS
        + tdc.chain.nominal_bin_ps * tdc.chain_length
        + 600.0,
        tdc.phase.max_ps,
    )


def _default_coarse_ps(tdc: TunableDualPolarityTdc) -> float:
    return tdc.chain.nominal_bin_ps * tdc.chain_length / 4.0


def _mean_positions(
    tdc: TunableDualPolarityTdc, theta_ps: float, kernel: str = None
) -> tuple[float, float]:
    rising = trace_mean_distance(
        tdc.capture_trace(theta_ps, Polarity.RISING, kernel=kernel)
    )
    falling = trace_mean_distance(
        tdc.capture_trace(theta_ps, Polarity.FALLING, kernel=kernel)
    )
    return rising, falling


def find_theta_init(
    tdc: TunableDualPolarityTdc,
    theta_start_ps: Optional[float] = None,
    coarse_step_ps: Optional[float] = None,
    kernel: Optional[str] = None,
) -> float:
    """Search downward from a large theta until transitions are centred.

    Returns the theta_init to use for this route's measurements.  Raises
    :class:`CalibrationError` if no setting lands both polarities inside
    the capture window (e.g. the route is far longer than the
    programmable phase range).

    Every probe trace routes through the capture kernel selected by
    ``kernel`` (``None`` takes the process default, normally the batched
    kernel), so calibration scales with the same vectorised path as the
    measurement phase.
    """
    # Chaos fault site: a glitched sweep aborts before the first probe
    # trace, so the re-run consumes the identical noise sequence.
    maybe_inject(
        "sensor.calibrate", CalibrationGlitchError,
        f"route {tdc.route.name!r}: calibration sweep aborted "
        f"(injected environmental glitch)",
    )
    phase = tdc.phase
    if theta_start_ps is None:
        theta_start_ps = _default_start_ps(tdc)
    start = theta_start_ps
    coarse = coarse_step_ps if coarse_step_ps is not None else (
        _default_coarse_ps(tdc)
    )
    theta = phase.quantise(start)

    # Coarse descent: stop when either transition is inside the window.
    while theta > 0.0:
        rising, falling = _mean_positions(tdc, theta, kernel)
        if rising < float(tdc.chain_length) or falling < float(tdc.chain_length):
            break
        theta = max(theta - coarse, 0.0)
    else:
        registry.counter(
            "calibration_failures_total", "routes that failed calibration"
        ).inc()
        _log.error("calibration_failed", route=tdc.route.name,
                   reason="never_entered_chain")
        raise CalibrationError(
            f"route {tdc.route.name!r}: transitions never entered the chain"
        )

    # Fine descent: centre the mean of both polarities in the window.
    # Every probe beyond the first is a retry at a reduced theta.
    best_theta = None
    fine = phase.step_ps
    probes = int(2.0 * coarse / fine) + tdc.chain_length
    retries = 0
    for attempt in range(probes):
        rising, falling = _mean_positions(tdc, theta, kernel)
        centre = (rising + falling) / 2.0
        if _TARGET_LOW <= centre <= _TARGET_HIGH and min(rising, falling) > 4.0:
            best_theta = theta
            retries = attempt
            break
        if max(rising, falling) <= _TARGET_LOW:
            retries = attempt
            break
        theta -= fine
        if theta < 0.0:
            retries = attempt
            break
    else:
        retries = probes
    registry.counter(
        "calibration_retries_total",
        "fine-descent probes re-taken beyond the first per route",
    ).inc(retries)
    if best_theta is None:
        registry.counter(
            "calibration_failures_total", "routes that failed calibration"
        ).inc()
        _log.error("calibration_failed", route=tdc.route.name,
                   reason="could_not_centre")
        raise CalibrationError(
            f"route {tdc.route.name!r}: could not centre transitions "
            f"in the capture window"
        )
    _log.debug("calibrated_route", route=tdc.route.name,
               theta_init_ps=best_theta, retries=retries)
    return best_theta


@dataclass
class _LockstepRoute:
    """One route's scan state inside the lockstep descent."""

    name: str
    tdc: TunableDualPolarityTdc
    theta: float
    coarse: float
    fine: float
    probes: int
    stage: str = "coarse"  # coarse | fine | done | failed
    failure: Optional[str] = None
    best_theta: Optional[float] = None
    attempt: int = 0
    retries: int = 0


def _advance_scan(scan: _LockstepRoute, rising: float, falling: float) -> None:
    """Apply one probe's outcome, mirroring the scalar scan exactly."""
    if scan.stage == "coarse":
        chain_length = float(scan.tdc.chain_length)
        if rising < chain_length or falling < chain_length:
            # The scalar scan re-probes this same theta as the first
            # fine-descent attempt.
            scan.stage = "fine"
            return
        scan.theta = max(scan.theta - scan.coarse, 0.0)
        if scan.theta <= 0.0:
            scan.stage = "failed"
            scan.failure = "never_entered_chain"
        return
    centre = (rising + falling) / 2.0
    if _TARGET_LOW <= centre <= _TARGET_HIGH and min(rising, falling) > 4.0:
        scan.best_theta = scan.theta
        scan.retries = scan.attempt
        scan.stage = "done"
        return
    if max(rising, falling) <= _TARGET_LOW:
        scan.retries = scan.attempt
        scan.stage = "failed"
        scan.failure = "could_not_centre"
        return
    scan.theta -= scan.fine
    if scan.theta < 0.0:
        scan.retries = scan.attempt
        scan.stage = "failed"
        scan.failure = "could_not_centre"
        return
    scan.attempt += 1
    if scan.attempt >= scan.probes:
        scan.retries = scan.probes
        scan.stage = "failed"
        scan.failure = "could_not_centre"


def find_theta_init_bank(
    tdcs: Mapping[str, TunableDualPolarityTdc],
    results: Optional[dict] = None,
) -> dict[str, float]:
    """Lockstep calibration of a whole route bank (the batched kernel).

    Runs every route's downward scan simultaneously: each round takes
    one probe per still-searching route at that route's own current
    theta and resolves the whole round as one stacked tensor via
    :func:`repro.sensor.bank.probe_bank`.  Each route owns an
    independent generator stream and its probe sequence (thetas, draw
    order, draw shapes) is exactly the sequence :func:`find_theta_init`
    takes, so the returned theta_init values and the calibration
    counters are bit-identical to the scalar per-route scan, with or
    without jitter.

    Failures reproduce the sequential contract: counters, logs and
    stored thetas replay in bank order and the first failing route
    raises :class:`CalibrationError`, leaving ``results`` (when given)
    holding the thetas of the routes preceding it -- the same partial
    progress the per-route loop leaves behind.  (Routes after the
    failure consumed their probe draws, but a failed calibration
    abandons the session, so nothing observable depends on them.)

    Unlike the scalar scan this function also counts
    ``calibrations_total`` per stored route, because the caller cannot
    interleave per-route bookkeeping with a fused scan.
    """
    from repro.sensor.bank import probe_bank

    scans = []
    for name, tdc in tdcs.items():
        theta = tdc.phase.quantise(_default_start_ps(tdc))
        coarse = _default_coarse_ps(tdc)
        fine = tdc.phase.step_ps
        scan = _LockstepRoute(
            name=name, tdc=tdc, theta=theta, coarse=coarse, fine=fine,
            probes=int(2.0 * coarse / fine) + tdc.chain_length,
        )
        if theta <= 0.0:
            # The scalar while-loop never runs: an immediate failure.
            scan.stage = "failed"
            scan.failure = "never_entered_chain"
        scans.append(scan)

    while True:
        active = [s for s in scans if s.stage in ("coarse", "fine")]
        if not active:
            break
        rising, falling = probe_bank(
            [s.tdc for s in active], [s.theta for s in active]
        )
        for scan, r, f in zip(active, rising, falling):
            _advance_scan(scan, float(r), float(f))

    if results is None:
        results = {}
    for scan in scans:
        if scan.failure == "never_entered_chain":
            registry.counter(
                "calibration_failures_total",
                "routes that failed calibration",
            ).inc()
            _log.error("calibration_failed", route=scan.name,
                       reason="never_entered_chain")
            raise CalibrationError(
                f"route {scan.name!r}: transitions never entered the chain"
            )
        registry.counter(
            "calibration_retries_total",
            "fine-descent probes re-taken beyond the first per route",
        ).inc(scan.retries)
        if scan.best_theta is None:
            registry.counter(
                "calibration_failures_total",
                "routes that failed calibration",
            ).inc()
            _log.error("calibration_failed", route=scan.name,
                       reason="could_not_centre")
            raise CalibrationError(
                f"route {scan.name!r}: could not centre transitions "
                f"in the capture window"
            )
        _log.debug("calibrated_route", route=scan.name,
                   theta_init_ps=scan.best_theta, retries=scan.retries)
        results[scan.name] = scan.best_theta
        registry.counter(
            "calibrations_total", "routes calibrated from scratch"
        ).inc()
    return results
