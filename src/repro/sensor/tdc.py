"""The Tunable Dual-Polarity TDC sensor.

Wires together the programmable clocks, transition generator, route
under test, carry chain and capture registers (Figure 3 of the paper)
into a sampling sensor, and implements the measurement procedure of
Section 5.2: ten traces of sixteen samples per polarity with theta
iteratively decreased from theta_init, reduced to one falling-minus-
rising delay estimate in picoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SensorError
from repro.fabric.device import FpgaDevice
from repro.fabric.routing import Route
from repro.rng import SeedLike, make_rng
from repro.sensor.capture import CaptureBank
from repro.sensor.carry_chain import CarryChain
from repro.sensor.clocking import PhaseGenerator
from repro.sensor.noise import CLOUD_NOISE, NoiseModel, NoiseState
from repro.sensor.postprocess import delta_ps_from_traces
from repro.sensor.trace import SAMPLES_PER_TRACE, Polarity, Trace
from repro.sensor.transition import TransitionGenerator

#: The paper's measurement depth: "Ten traces are taken from each TDC".
TRACES_PER_MEASUREMENT = 10


@dataclass(frozen=True)
class Measurement:
    """One complete TDC measurement of one route."""

    route_name: str
    theta_init_ps: float
    rising_distance: float
    falling_distance: float
    delta_ps: float

    def __str__(self) -> str:
        return (
            f"Measurement({self.route_name}: delta={self.delta_ps:+.3f} ps, "
            f"rising={self.rising_distance:.2f}, "
            f"falling={self.falling_distance:.2f} bins)"
        )


class TunableDualPolarityTdc:
    """One TDC instance bound to one route under test on one device."""

    def __init__(
        self,
        device: FpgaDevice,
        route: Route,
        noise: NoiseModel = CLOUD_NOISE,
        seed: SeedLike = None,
        phase: PhaseGenerator = None,
    ) -> None:
        rng = make_rng(seed)
        self.device = device
        self.route = route
        self.phase = phase or PhaseGenerator(
            step_ps=device.part.carry_bin_ps, max_ps=40000.0
        )
        self.chain = CarryChain(
            length=device.part.tdc_chain_length,
            nominal_bin_ps=device.part.carry_bin_ps,
            seed=rng,
        )
        self.generator = TransitionGenerator(device=device, route=route)
        self._bank = CaptureBank(length=self.chain.length, seed=rng)
        self._noise = NoiseState(noise, seed=rng)

    @property
    def chain_length(self) -> int:
        """Number of carry-chain elements (capture taps)."""
        return self.chain.length

    def sample_word(self, theta_ps: float, polarity: Polarity) -> np.ndarray:
        """One capture word at one theta setting.

        The wavefront position is ``theta`` minus the edge's arrival time
        at the chain entry, perturbed by clock jitter and the slow
        polarity-asymmetric supply offset.
        """
        theta = self.phase.quantise(theta_ps)
        arrival = self.generator.arrival_at_chain_ps(polarity)
        offset = self._noise.polarity_offset_ps
        arrival += offset if polarity is Polarity.FALLING else -offset
        arrival += self._noise.sample_jitter_ps()
        time_in_chain = theta - arrival
        position = self.chain.wavefront_position(max(time_in_chain, 0.0))
        return self._bank.capture(position, polarity)

    def capture_trace(
        self,
        theta_ps: float,
        polarity: Polarity,
        samples: int = SAMPLES_PER_TRACE,
    ) -> Trace:
        """One trace: ``samples`` capture words at a fixed theta."""
        if samples <= 0:
            raise SensorError(f"samples must be positive, got {samples}")
        words = np.stack(
            [self.sample_word(theta_ps, polarity) for _ in range(samples)]
        )
        return Trace(polarity=polarity, theta_ps=theta_ps, words=words)

    def measure(
        self,
        theta_init_ps: float,
        traces: int = TRACES_PER_MEASUREMENT,
        samples: int = SAMPLES_PER_TRACE,
    ) -> Measurement:
        """One full measurement per the paper's procedure.

        Takes ``traces`` traces per polarity while decreasing theta one
        phase step per trace from ``theta_init_ps`` ("to avoid relying on
        a single trace that could be affected by architectural
        irregularities"), averages the Binary Hamming Distances, and
        converts to picoseconds.
        """
        measurement, _, _ = self.measure_raw(theta_init_ps, traces, samples)
        return measurement

    def measure_raw(
        self,
        theta_init_ps: float,
        traces: int = TRACES_PER_MEASUREMENT,
        samples: int = SAMPLES_PER_TRACE,
    ) -> tuple:
        """Like :meth:`measure`, but also returns the raw traces.

        Returns ``(measurement, rising_traces, falling_traces)``.  The
        raw capture words are what a hardware deployment would log;
        :mod:`repro.sensor.traceio` archives them so the identical
        post-processing/analysis pipeline can replay either source.
        """
        self._noise.advance_epoch()
        thetas = self.phase.steps_down(theta_init_ps, traces)
        rising = [self.capture_trace(t, Polarity.RISING, samples) for t in thetas]
        falling = [self.capture_trace(t, Polarity.FALLING, samples) for t in thetas]
        delta = delta_ps_from_traces(rising, falling, self.chain.nominal_bin_ps)
        rising_mean = float(
            np.mean([np.count_nonzero(t.words, axis=1).mean() for t in rising])
        )
        falling_mean = float(
            np.mean(
                [
                    (t.words.shape[1] - np.count_nonzero(t.words, axis=1)).mean()
                    for t in falling
                ]
            )
        )
        measurement = Measurement(
            route_name=self.route.name,
            theta_init_ps=theta_init_ps,
            rising_distance=rising_mean,
            falling_distance=falling_mean,
            delta_ps=delta,
        )
        return measurement, rising, falling
