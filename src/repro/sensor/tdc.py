"""The Tunable Dual-Polarity TDC sensor.

Wires together the programmable clocks, transition generator, route
under test, carry chain and capture registers (Figure 3 of the paper)
into a sampling sensor, and implements the measurement procedure of
Section 5.2: ten traces of sixteen samples per polarity with theta
iteratively decreased from theta_init, reduced to one falling-minus-
rising delay estimate in picoseconds.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import CaptureDropError, SensorError
from repro.fabric.device import FpgaDevice
from repro.fabric.routing import Route
from repro.observability.metrics import registry
from repro.reliability.faults import maybe_inject
from repro.rng import SeedLike, make_rng
from repro.sensor.capture import CaptureBank, resolve_words
from repro.sensor.carry_chain import CarryChain
from repro.sensor.clocking import PhaseGenerator
from repro.sensor.noise import CLOUD_NOISE, NoiseModel, NoiseState
from repro.sensor.postprocess import batch_trace_mean_distances
from repro.sensor.trace import SAMPLES_PER_TRACE, Polarity, Trace
from repro.sensor.transition import TransitionGenerator

#: The paper's measurement depth: "Ten traces are taken from each TDC".
TRACES_PER_MEASUREMENT = 10

#: Capture kernels: the vectorised batched kernel is the production
#: path; the scalar per-word loop stays as the reference implementation
#: the equivalence tests pin the batched kernel against.
CAPTURE_KERNELS = ("batched", "scalar")

_default_kernel = os.environ.get("REPRO_CAPTURE_KERNEL", "batched")
if _default_kernel not in CAPTURE_KERNELS:
    _default_kernel = "batched"


def _check_kernel(kernel: str) -> str:
    if kernel not in CAPTURE_KERNELS:
        raise SensorError(
            f"unknown capture kernel {kernel!r}; choose from "
            f"{CAPTURE_KERNELS}"
        )
    return kernel


def get_capture_kernel() -> str:
    """The process-wide default capture kernel."""
    return _default_kernel


def set_capture_kernel(kernel: str) -> str:
    """Select the process-wide default capture kernel.

    Returns the previous default so callers can restore it; benchmarks
    and the equivalence suite use :func:`capture_kernel` instead.
    """
    global _default_kernel
    previous = _default_kernel
    _default_kernel = _check_kernel(kernel)
    return previous


@contextmanager
def capture_kernel(kernel: str) -> Iterator[str]:
    """Temporarily force every measurement through one kernel."""
    previous = set_capture_kernel(kernel)
    try:
        yield kernel
    finally:
        set_capture_kernel(previous)


@dataclass(frozen=True)
class Measurement:
    """One complete TDC measurement of one route."""

    route_name: str
    theta_init_ps: float
    rising_distance: float
    falling_distance: float
    delta_ps: float

    def __str__(self) -> str:
        return (
            f"Measurement({self.route_name}: delta={self.delta_ps:+.3f} ps, "
            f"rising={self.rising_distance:.2f}, "
            f"falling={self.falling_distance:.2f} bins)"
        )


class TunableDualPolarityTdc:
    """One TDC instance bound to one route under test on one device."""

    def __init__(
        self,
        device: FpgaDevice,
        route: Route,
        noise: NoiseModel = CLOUD_NOISE,
        seed: SeedLike = None,
        phase: Optional[PhaseGenerator] = None,
    ) -> None:
        rng = make_rng(seed)
        self.device = device
        self.route = route
        self.phase = phase or PhaseGenerator(
            step_ps=device.part.carry_bin_ps, max_ps=40000.0
        )
        self.chain = CarryChain(
            length=device.part.tdc_chain_length,
            nominal_bin_ps=device.part.carry_bin_ps,
            seed=rng,
        )
        self.generator = TransitionGenerator(device=device, route=route)
        self._bank = CaptureBank(length=self.chain.length, seed=rng)
        self._noise = NoiseState(noise, seed=rng)

    @property
    def chain_length(self) -> int:
        """Number of carry-chain elements (capture taps)."""
        return self.chain.length

    def sample_word(self, theta_ps: float, polarity: Polarity) -> np.ndarray:
        """One capture word at one theta setting.

        The wavefront position is ``theta`` minus the edge's arrival time
        at the chain entry, perturbed by clock jitter and the slow
        polarity-asymmetric supply offset.
        """
        theta = self.phase.quantise(theta_ps)
        arrival = self.generator.arrival_at_chain_ps(polarity)
        offset = self._noise.polarity_offset_ps
        arrival += offset if polarity is Polarity.FALLING else -offset
        arrival += self._noise.sample_jitter_ps()
        time_in_chain = theta - arrival
        position = self.chain.wavefront_position(max(time_in_chain, 0.0))
        return self._bank.capture(position, polarity)

    def capture_draws(
        self,
        thetas_ps: Sequence[float],
        polarity: Polarity,
        samples: int = SAMPLES_PER_TRACE,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Materialise one capture batch's random inputs without resolving.

        Returns ``(times_in_chain, uniforms)`` of shapes ``(len(thetas),
        samples)`` and ``(len(thetas), samples, chain_length)``, consuming
        this TDC's generator stream in exactly the order
        :meth:`capture_words` does (jitter matrix, then metastability
        uniforms).  Bank-level kernels call this per route, stack the
        results, and resolve the whole board in one comparison -- so the
        stacked path is bit-identical to the per-route batched path.
        """
        if samples <= 0:
            raise SensorError(f"samples must be positive, got {samples}")
        if len(thetas_ps) == 0:
            raise SensorError("need at least one theta setting")
        thetas = np.array([self.phase.quantise(t) for t in thetas_ps])
        arrival = self.generator.arrival_at_chain_ps(polarity)
        offset = self._noise.polarity_offset_ps
        arrival += offset if polarity is Polarity.FALLING else -offset
        jitter = self._noise.sample_jitter_matrix_ps((len(thetas), samples))
        times_in_chain = thetas[:, np.newaxis] - (arrival + jitter)
        uniforms = self._bank.draw_uniforms((len(thetas), samples))
        return times_in_chain, uniforms

    def measure_draws(
        self,
        theta_init_ps: float,
        traces: int = TRACES_PER_MEASUREMENT,
        samples: int = SAMPLES_PER_TRACE,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise one full measurement's random inputs per polarity.

        Runs :meth:`measure_raw`'s batched preamble -- capture-drop
        injection check, noise epoch advance, rising then falling draws
        -- without resolving any words, so a bank-level measurement can
        consume each route's stream in sequential order and defer the
        resolve to one stacked kernel call.  Returns ``(thetas, times,
        uniforms)`` where ``times`` is ``(2, traces, samples)`` and
        ``uniforms`` ``(2, traces, samples, chain_length)``, axis 0
        ordered (rising, falling).
        """
        maybe_inject(
            "sensor.capture", CaptureDropError,
            f"route {self.route.name!r}: capture trace dropped in "
            f"flight (injected)",
        )
        self._noise.advance_epoch()
        thetas = self.phase.steps_down(theta_init_ps, traces)
        rising_times, rising_uniforms = self.capture_draws(
            thetas, Polarity.RISING, samples
        )
        falling_times, falling_uniforms = self.capture_draws(
            thetas, Polarity.FALLING, samples
        )
        return (
            np.asarray(thetas, dtype=float),
            np.stack([rising_times, falling_times]),
            np.stack([rising_uniforms, falling_uniforms]),
        )

    def capture_words(
        self,
        thetas_ps: Sequence[float],
        polarity: Polarity,
        samples: int = SAMPLES_PER_TRACE,
    ) -> np.ndarray:
        """The batched capture kernel: one polarity, many thetas at once.

        Computes every capture word of a measurement in one shot as a
        ``(len(thetas), samples, chain_length)`` boolean tensor: jitter
        is drawn as a single RNG matrix, the wavefront positions resolve
        through one vectorised ``searchsorted`` over the chain
        boundaries, and metastability resolves with one broadcast
        comparison against the pre-drawn uniforms.
        """
        times_in_chain, uniforms = self.capture_draws(
            thetas_ps, polarity, samples
        )
        positions = self.chain.wavefront_positions(
            np.maximum(times_in_chain, 0.0)
        )
        words = resolve_words(positions, uniforms, polarity)
        # One increment per batch, sized in words: the kernel's
        # throughput counter costs O(1) per call, not per word.
        registry.counter(
            "capture_words_total",
            "capture words computed by the batched kernel",
        ).inc(times_in_chain.shape[0] * samples)
        return words

    def capture_trace(
        self,
        theta_ps: float,
        polarity: Polarity,
        samples: int = SAMPLES_PER_TRACE,
        kernel: Optional[str] = None,
    ) -> Trace:
        """One trace: ``samples`` capture words at a fixed theta.

        Routes through the batched kernel by default (one-theta batch);
        ``kernel="scalar"`` takes the per-word reference path.
        """
        if _check_kernel(kernel or _default_kernel) == "scalar":
            return self.capture_trace_scalar(theta_ps, polarity, samples)
        words = self.capture_words([theta_ps], polarity, samples)[0]
        return Trace(polarity=polarity, theta_ps=theta_ps, words=words)

    def capture_trace_scalar(
        self,
        theta_ps: float,
        polarity: Polarity,
        samples: int = SAMPLES_PER_TRACE,
    ) -> Trace:
        """Reference implementation: one :meth:`sample_word` per sample."""
        if samples <= 0:
            raise SensorError(f"samples must be positive, got {samples}")
        words = np.stack(
            [self.sample_word(theta_ps, polarity) for _ in range(samples)]
        )
        return Trace(polarity=polarity, theta_ps=theta_ps, words=words)

    def measure(
        self,
        theta_init_ps: float,
        traces: int = TRACES_PER_MEASUREMENT,
        samples: int = SAMPLES_PER_TRACE,
        kernel: Optional[str] = None,
    ) -> Measurement:
        """One full measurement per the paper's procedure.

        Takes ``traces`` traces per polarity while decreasing theta one
        phase step per trace from ``theta_init_ps`` ("to avoid relying on
        a single trace that could be affected by architectural
        irregularities"), averages the Binary Hamming Distances, and
        converts to picoseconds.
        """
        measurement, _, _ = self.measure_raw(
            theta_init_ps, traces, samples, kernel
        )
        return measurement

    def measure_raw(
        self,
        theta_init_ps: float,
        traces: int = TRACES_PER_MEASUREMENT,
        samples: int = SAMPLES_PER_TRACE,
        kernel: Optional[str] = None,
    ) -> tuple[Measurement, list[Trace], list[Trace]]:
        """Like :meth:`measure`, but also returns the raw traces.

        Returns ``(measurement, rising_traces, falling_traces)``.  The
        raw capture words are what a hardware deployment would log;
        :mod:`repro.sensor.traceio` archives them so the identical
        post-processing/analysis pipeline can replay either source.

        ``kernel`` selects the capture implementation ("batched" or
        "scalar"); ``None`` uses the process default (see
        :func:`set_capture_kernel`).  Both kernels draw from the same
        generator stream, but the batched kernel draws the per-sample
        jitter as one matrix before the metastability uniforms, so for a
        jittered noise model the two kernels realise different (equally
        distributed) noise; with jitter disabled they agree bit for bit.
        """
        kernel = _check_kernel(kernel or _default_kernel)
        # Chaos fault site: a dropped capture aborts before the noise
        # epoch advances, so a retried measurement sees exactly the
        # noise sequence the clean run would have.
        maybe_inject(
            "sensor.capture", CaptureDropError,
            f"route {self.route.name!r}: capture trace dropped in "
            f"flight (injected)",
        )
        self._noise.advance_epoch()
        thetas = self.phase.steps_down(theta_init_ps, traces)
        if kernel == "scalar":
            rising = [
                self.capture_trace_scalar(t, Polarity.RISING, samples)
                for t in thetas
            ]
            falling = [
                self.capture_trace_scalar(t, Polarity.FALLING, samples)
                for t in thetas
            ]
            rising_words = np.stack([t.words for t in rising])
            falling_words = np.stack([t.words for t in falling])
        else:
            rising_words = self.capture_words(thetas, Polarity.RISING, samples)
            falling_words = self.capture_words(
                thetas, Polarity.FALLING, samples
            )
            rising = [
                Trace(polarity=Polarity.RISING, theta_ps=t, words=w)
                for t, w in zip(thetas, rising_words)
            ]
            falling = [
                Trace(polarity=Polarity.FALLING, theta_ps=t, words=w)
                for t, w in zip(thetas, falling_words)
            ]
        # One Hamming pass per polarity serves both the distances and the
        # delta; the reduction order matches delta_ps_from_traces bit for
        # bit (mean over samples per trace, then mean over traces).
        rising_mean = float(
            np.mean(batch_trace_mean_distances(rising_words, Polarity.RISING))
        )
        falling_mean = float(
            np.mean(
                batch_trace_mean_distances(falling_words, Polarity.FALLING)
            )
        )
        delta = (rising_mean - falling_mean) * self.chain.nominal_bin_ps
        measurement = Measurement(
            route_name=self.route.name,
            theta_init_ps=theta_init_ps,
            rising_distance=rising_mean,
            falling_distance=falling_mean,
            delta_ps=delta,
        )
        return measurement, rising, falling
