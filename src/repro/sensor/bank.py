"""Bank-level capture: every route of a board in one kernel call.

PR 2 batched the *trace* axes -- one ``(traces, samples, chain)`` tensor
per polarity per route.  This module adds the *routes* axis on top: a
board's whole measurement bank resolves as one ``(routes, traces,
samples, chain)`` boolean tensor per polarity, and a calibration round
probes every still-searching route with one stacked resolve.

The RNG discipline that makes this bit-identical to the per-route path:
each route owns an independent generator stream (spawned per route by
:class:`~repro.designs.measure.MeasureSession`), and the bank kernels
materialise each route's draws *sequentially, in bank order* via
:meth:`~repro.sensor.tdc.TunableDualPolarityTdc.capture_draws` /
``measure_draws`` -- exactly the draws the per-route loop would make --
then stack the pre-drawn times and uniforms and resolve them in one
broadcast comparison.  Batching therefore changes where the arithmetic
happens, never which random numbers feed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.observability.metrics import registry
from repro.sensor.capture import resolve_words
from repro.sensor.carry_chain import bank_wavefront_positions
from repro.sensor.postprocess import bank_trace_mean_distances
from repro.sensor.tdc import Measurement, TunableDualPolarityTdc
from repro.sensor.trace import SAMPLES_PER_TRACE, Polarity


@dataclass(frozen=True)
class RouteDraws:
    """One route's pre-materialised measurement randomness.

    ``times`` is ``(2, traces, samples)`` and ``uniforms`` ``(2, traces,
    samples, chain)``, axis 0 ordered (rising, falling) -- the output of
    :meth:`TunableDualPolarityTdc.measure_draws`.
    """

    name: str
    theta_init_ps: float
    times: np.ndarray
    uniforms: np.ndarray


def resolve_bank(
    tdcs: Sequence[TunableDualPolarityTdc],
    draws: Sequence[RouteDraws],
) -> dict[str, Measurement]:
    """Resolve a bank of pre-drawn measurements in one stacked kernel.

    Stacks every route's times/uniforms into ``(routes, 2, traces,
    samples[, chain])`` tensors, resolves wavefront positions against
    the per-route chain boundaries in one call, and reduces to one
    :class:`Measurement` per route.  Each route's words and means agree
    bit for bit with ``measure_raw`` on that route alone.
    """
    if not draws:
        return {}
    times = np.stack([d.times for d in draws])
    uniforms = np.stack([d.uniforms for d in draws])
    chains = [tdc.chain for tdc in tdcs]
    positions = bank_wavefront_positions(chains, np.maximum(times, 0.0))
    rising_words = resolve_words(
        positions[:, 0], uniforms[:, 0], Polarity.RISING
    )
    falling_words = resolve_words(
        positions[:, 1], uniforms[:, 1], Polarity.FALLING
    )
    rising_means = bank_trace_mean_distances(
        rising_words, Polarity.RISING
    ).mean(axis=-1)
    falling_means = bank_trace_mean_distances(
        falling_words, Polarity.FALLING
    ).mean(axis=-1)
    registry.counter(
        "capture_words_total",
        "capture words computed by the batched kernel",
    ).inc(2 * times.shape[0] * times.shape[2] * times.shape[3])
    measurements: dict[str, Measurement] = {}
    for tdc, d, rising, falling in zip(
        tdcs, draws, rising_means, falling_means
    ):
        rising = float(rising)
        falling = float(falling)
        measurements[d.name] = Measurement(
            route_name=d.name,
            theta_init_ps=d.theta_init_ps,
            rising_distance=rising,
            falling_distance=falling,
            delta_ps=(rising - falling) * tdc.chain.nominal_bin_ps,
        )
    return measurements


def probe_bank(
    tdcs: Sequence[TunableDualPolarityTdc],
    thetas_ps: Sequence[float],
    samples: int = SAMPLES_PER_TRACE,
) -> tuple[np.ndarray, np.ndarray]:
    """One calibration probe per route, resolved as one stacked call.

    Route ``r`` takes a single rising and a single falling trace at
    ``thetas_ps[r]`` -- the same draws, in the same per-route order, as
    two sequential ``capture_trace`` calls -- and the whole round
    resolves together.  Returns ``(rising_means, falling_means)``, the
    per-route mean propagation distances in chain elements.
    """
    times_rows = []
    uniform_rows = []
    for tdc, theta in zip(tdcs, thetas_ps):
        rising_times, rising_uniforms = tdc.capture_draws(
            [theta], Polarity.RISING, samples
        )
        falling_times, falling_uniforms = tdc.capture_draws(
            [theta], Polarity.FALLING, samples
        )
        times_rows.append(np.stack([rising_times, falling_times]))
        uniform_rows.append(np.stack([rising_uniforms, falling_uniforms]))
    times = np.stack(times_rows)
    uniforms = np.stack(uniform_rows)
    chains = [tdc.chain for tdc in tdcs]
    positions = bank_wavefront_positions(chains, np.maximum(times, 0.0))
    rising_words = resolve_words(
        positions[:, 0], uniforms[:, 0], Polarity.RISING
    )
    falling_words = resolve_words(
        positions[:, 1], uniforms[:, 1], Polarity.FALLING
    )
    rising_means = bank_trace_mean_distances(
        rising_words, Polarity.RISING
    )[:, 0]
    falling_means = bank_trace_mean_distances(
        falling_words, Polarity.FALLING
    )[:, 0]
    registry.counter(
        "capture_words_total",
        "capture words computed by the batched kernel",
    ).inc(2 * len(times_rows) * samples)
    return rising_means, falling_means
