"""Capture registers: sampling the carry chain into a binary word.

The capture clock snapshots every chain tap simultaneously.  Registers
behind the wavefront have settled to the post-transition value; registers
ahead still hold the pre-transition value; the register *at* the
wavefront is metastable and resolves randomly, occasionally producing the
small "bubble" regions visible in the paper's Figure 3 examples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SensorError
from repro.rng import SeedLike, make_rng
from repro.sensor.trace import Polarity

#: Registers within this many bins of the wavefront can resolve randomly.
METASTABLE_WINDOW_BINS = 0.8


def resolve_words(
    positions: np.ndarray, uniforms: np.ndarray, polarity: Polarity
) -> np.ndarray:
    """Resolve wavefront positions against pre-drawn metastability uniforms.

    ``positions`` has any shape; ``uniforms`` appends the tap axis
    (``positions.shape + (length,)``).  Separating the uniform draws
    from the resolution lets bank-level kernels materialise each
    route's RNG in sequential per-route order and still resolve the
    whole ``(routes, traces, samples, chain)`` stack in one comparison.
    """
    length = uniforms.shape[-1]
    taps = np.arange(length, dtype=float)
    passed = np.clip(
        (positions[..., np.newaxis] - taps) / METASTABLE_WINDOW_BINS + 0.5,
        0.0,
        1.0,
    )
    resolved = uniforms < passed
    if polarity is Polarity.RISING:
        return resolved
    return ~resolved


class CaptureBank:
    """Samples a fractional wavefront position into a capture word."""

    def __init__(self, length: int, seed: SeedLike = None) -> None:
        if length <= 0:
            raise SensorError(f"bank length must be positive, got {length}")
        self.length = length
        self._rng = make_rng(seed)
        self._taps = np.arange(length, dtype=float)

    def capture(self, position: float, polarity: Polarity) -> np.ndarray:
        """One capture word for a wavefront at ``position`` elements.

        For a rising launch, taps behind the wavefront read 1 and taps
        ahead read 0; a falling launch is the complement.  Taps within
        the metastable window of the wavefront resolve probabilistically
        with the wavefront's fractional coverage.
        """
        if not 0.0 <= position <= self.length:
            raise SensorError(
                f"position {position} outside chain [0, {self.length}]"
            )
        # Probability that each tap has seen the transition pass.
        passed = np.clip(
            (position - self._taps) / METASTABLE_WINDOW_BINS + 0.5, 0.0, 1.0
        )
        resolved = self._rng.random(self.length) < passed
        if polarity is Polarity.RISING:
            return resolved
        return ~resolved

    def draw_uniforms(self, shape: tuple) -> np.ndarray:
        """Metastability uniforms for a batch, as one C-order draw.

        Consumes this bank's generator stream exactly as
        :meth:`capture_batch` would for positions of ``shape``; the
        bank-level kernels draw per route up front and resolve the
        stacked tensor later via :func:`resolve_words`.
        """
        return self._rng.random(tuple(shape) + (self.length,))

    def capture_batch(
        self, positions: np.ndarray, polarity: Polarity
    ) -> np.ndarray:
        """Capture words for a whole batch of wavefront positions at once.

        ``positions`` may have any shape (a measurement uses ``(traces,
        samples)``); the result appends a tap axis, giving boolean words
        of shape ``positions.shape + (length,)``.

        The metastability uniforms come from one C-order ``random`` draw,
        which consumes the generator stream in exactly the order the
        scalar :meth:`capture` would over the same positions -- so for a
        jitter-free noise model the batched and scalar paths produce
        identical words from identical seeds.
        """
        positions = np.asarray(positions, dtype=float)
        if positions.size and (
            positions.min() < 0.0 or positions.max() > self.length
        ):
            raise SensorError(
                f"batch positions outside chain [0, {self.length}]"
            )
        passed = np.clip(
            (positions[..., np.newaxis] - self._taps) / METASTABLE_WINDOW_BINS
            + 0.5,
            0.0,
            1.0,
        )
        resolved = self._rng.random(positions.shape + (self.length,)) < passed
        if polarity is Polarity.RISING:
            return resolved
        return ~resolved
