"""Programmable clock generation: the launch/capture phase ``theta``.

The TDC uses two same-frequency clocks whose phase relationship is
runtime-programmable through the MMCM's fine phase shift.  The phase
step quantises the values of ``theta`` an attacker can actually program;
UltraScale+ fine phase shifts move in VCO-period/56 increments, a few
picoseconds at typical settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SensorError


@dataclass(frozen=True)
class PhaseGenerator:
    """Quantised programmable phase between launch and capture clocks.

    Attributes:
        step_ps: granularity of programmable phase (MMCM fine shift).
        max_ps: largest programmable offset (one clock period).
    """

    step_ps: float = 2.8
    max_ps: float = 20000.0

    def __post_init__(self) -> None:
        if self.step_ps <= 0.0:
            raise SensorError(f"phase step must be positive, got {self.step_ps}")
        if self.max_ps <= self.step_ps:
            raise SensorError("max phase must exceed one step")

    def quantise(self, theta_ps: float) -> float:
        """Snap a requested phase to the programmable grid."""
        if not 0.0 <= theta_ps <= self.max_ps:
            raise SensorError(
                f"theta {theta_ps} ps outside programmable range "
                f"[0, {self.max_ps}]"
            )
        return round(theta_ps / self.step_ps) * self.step_ps

    def steps_down(self, theta_ps: float, count: int) -> list[float]:
        """``count`` successive settings decreasing from ``theta_ps``.

        The measurement phase "iteratively decreases" theta from
        theta_init across its ten traces; this enumerates those settings.
        """
        if count <= 0:
            raise SensorError(f"count must be positive, got {count}")
        start = self.quantise(theta_ps)
        values = []
        for k in range(count):
            value = start - k * self.step_ps
            if value < 0.0:
                raise SensorError("theta stepped below zero during sweep")
            values.append(value)
        return values
