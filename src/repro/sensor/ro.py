"""Ring-oscillator sensor: the prior-work baseline (Section 7).

RO sensors close a combinational loop through the tested route and an
inverter and count oscillations.  The paper identifies two limitations,
both modelled here:

1. **Polarity blindness** -- the oscillation period integrates the
   rising *and* falling propagation delays, so the burn-0 and burn-1
   imprints (which move the two polarities in opposite directions)
   largely cancel; the TDC's dual-polarity output is what makes the
   pentimento readable.
2. **DRC rejection** -- the loop is a self-oscillator, which cloud
   providers prohibit.  :func:`build_ro_netlist` produces the loop
   netlist so that :mod:`repro.fabric.drc` has the real thing to catch;
   the sensor is therefore only usable on local boards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SensorError
from repro.fabric.device import FpgaDevice
from repro.fabric.netlist import Cell, CellType, Net, NetActivity, Netlist
from repro.fabric.routing import Route
from repro.rng import SeedLike, make_rng

#: Propagation delay of the loop inverter, ps.
INVERTER_DELAY_PS = 35.0


def build_ro_netlist(route_name: str, route: Route) -> Netlist:
    """The RO's netlist: an inverter driving itself through the route.

    The loop net is combinational end-to-end, which is exactly what the
    provider's self-oscillator scan rejects.
    """
    netlist = Netlist(name=f"ro-sensor-{route_name}")
    netlist.add_cell(Cell(name="loop_inv", cell_type=CellType.INVERTER))
    netlist.add_cell(Cell(name="counter_ff", cell_type=CellType.FLIP_FLOP))
    loop = Net(
        name=f"{route_name}_loop",
        driver="loop_inv",
        sinks=("loop_inv", "counter_ff"),
        activity=NetActivity.TOGGLING,
        duty_high=0.5,
    )
    netlist.add_net(loop.with_route(route))
    return netlist


@dataclass
class RingOscillatorSensor:
    """Frequency counter over a combinational loop through a route."""

    device: FpgaDevice
    route: Route
    counter_gate_ns: float = 1000.0
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.counter_gate_ns <= 0.0:
            raise SensorError("counter gate time must be positive")
        self._rng = make_rng(self.seed)

    def period_ps(self) -> float:
        """True oscillation period: one rising plus one falling traversal."""
        delays = self.device.transition_delays(self.route)
        return delays.rising_ps + delays.falling_ps + 2.0 * INVERTER_DELAY_PS

    def count(self) -> int:
        """One gated count, with counting quantisation noise."""
        period = self.period_ps()
        expected = (self.counter_gate_ns * 1000.0) / period
        return int(self._rng.poisson(expected))

    def frequency_mhz(self, repeats: int = 16) -> float:
        """Averaged oscillation frequency estimate."""
        if repeats <= 0:
            raise SensorError(f"repeats must be positive, got {repeats}")
        counts = [self.count() for _ in range(repeats)]
        mean_count = sum(counts) / len(counts)
        return mean_count / self.counter_gate_ns * 1000.0
