"""Measurement-noise environments.

Two environments bracket the paper's settings:

* :data:`LAB_NOISE` -- a new board on a quiet bench in a
  temperature-controlled oven (Experiment 1): clock jitter only.
* :data:`CLOUD_NOISE` -- an AWS F1 card in a shared server (Experiments
  2-3): more jitter, plus a slowly wandering polarity-asymmetric offset
  from supply noise and co-located computation, which the paper cites as
  the reason its cloud results are "expectedly noisier".

The slow offset follows an AR(1) process advanced once per measurement
epoch, so consecutive hourly measurements are realistically correlated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class NoiseModel:
    """Noise magnitudes for one deployment environment.

    Attributes:
        jitter_ps: gaussian sigma of per-sample launch/capture timing
            jitter.
        polarity_offset_sigma_ps: stationary sigma of the slow AR(1)
            polarity-asymmetric delay offset (affects falling and rising
            with opposite sign, so it does not cancel in the
            falling-minus-rising observable).
        offset_correlation: AR(1) coefficient per measurement epoch.
    """

    jitter_ps: float
    polarity_offset_sigma_ps: float
    offset_correlation: float

    def __post_init__(self) -> None:
        if self.jitter_ps < 0.0 or self.polarity_offset_sigma_ps < 0.0:
            raise ConfigurationError("noise magnitudes must be >= 0")
        if not 0.0 <= self.offset_correlation < 1.0:
            raise ConfigurationError("offset_correlation must be in [0, 1)")


#: Calibrated so one full measurement (10 traces x 16 samples per
#: polarity) lands near the paper's observed per-point scatter: ~0.3 ps
#: on the bench (Figure 6) and ~0.45 ps in the cloud (Figure 7).
LAB_NOISE = NoiseModel(
    jitter_ps=2.0,
    polarity_offset_sigma_ps=0.03,
    offset_correlation=0.5,
)

CLOUD_NOISE = NoiseModel(
    jitter_ps=2.5,
    polarity_offset_sigma_ps=0.05,
    offset_correlation=0.7,
)


class NoiseState:
    """Evolving noise realisation for one sensor instance."""

    def __init__(self, model: NoiseModel, seed: SeedLike = None) -> None:
        self.model = model
        self._rng = make_rng(seed)
        self._offset_ps = 0.0

    def advance_epoch(self) -> None:
        """Step the slow polarity offset (call once per measurement)."""
        sigma = self.model.polarity_offset_sigma_ps
        if sigma == 0.0:
            return
        rho = self.model.offset_correlation
        innovation_sigma = sigma * (1.0 - rho**2) ** 0.5
        self._offset_ps = rho * self._offset_ps + float(
            self._rng.normal(0.0, innovation_sigma)
        )

    @property
    def polarity_offset_ps(self) -> float:
        """Current slow offset, added to falling and subtracted from rising."""
        return self._offset_ps

    def sample_jitter_ps(self) -> float:
        """Per-sample timing jitter draw."""
        if self.model.jitter_ps == 0.0:
            return 0.0
        return float(self._rng.normal(0.0, self.model.jitter_ps))

    def sample_jitter_matrix_ps(self, shape: tuple[int, ...]) -> np.ndarray:
        """A whole batch of per-sample jitter draws as one RNG call.

        A jitter-free model draws nothing (matching the scalar path's
        early return, which keeps the generator stream aligned between
        the scalar and batched capture kernels); otherwise one vectorised
        ``normal`` fills the requested shape.
        """
        if self.model.jitter_ps == 0.0:
            return np.zeros(shape)
        return self._rng.normal(0.0, self.model.jitter_ps, size=shape)
