"""Trace containers: raw TDC capture words and their metadata.

A *trace* is the paper's unit of sensing: a short series of 2^4 capture
words taken at one ``theta`` setting for one transition polarity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SensorError


class Polarity(enum.Enum):
    """Transition polarity launched through the route under test."""

    RISING = "rising"  # 0 -> 1
    FALLING = "falling"  # 1 -> 0


#: The paper's trace length: "a short series of 2^4 samples".
SAMPLES_PER_TRACE = 16


@dataclass(frozen=True)
class Trace:
    """One trace: capture words for one polarity at one theta.

    Attributes:
        polarity: the launched transition polarity.
        theta_ps: launch/capture phase offset used.
        words: boolean array of shape (samples, chain_length); element
            [i, j] is capture register j of sample i.
    """

    polarity: Polarity
    theta_ps: float
    words: np.ndarray

    def __post_init__(self) -> None:
        if self.words.ndim != 2:
            raise SensorError(
                f"trace words must be 2-D (samples x chain), got "
                f"shape {self.words.shape}"
            )
        if self.words.dtype != np.bool_:
            raise SensorError(f"trace words must be boolean, got {self.words.dtype}")

    @property
    def sample_count(self) -> int:
        """Capture words in this trace."""
        return int(self.words.shape[0])

    @property
    def chain_length(self) -> int:
        """Capture taps per word."""
        return int(self.words.shape[1])
