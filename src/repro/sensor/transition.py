"""The transition generator.

Converts the launch clock into single rising (0->1) and falling (1->0)
edges that propagate through the route under test and into the carry
chain.  Its insertion delay (clock-to-out plus the entry mux into the
chain) is a per-sensor constant absorbed into theta_init by calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SensorError
from repro.fabric.device import FpgaDevice
from repro.fabric.routing import Route
from repro.sensor.trace import Polarity

#: Nominal launch-path insertion delay, ps (FF clock-to-out + entry mux).
NOMINAL_INSERTION_DELAY_PS = 150.0


@dataclass
class TransitionGenerator:
    """Launches edges of either polarity through a route under test."""

    device: FpgaDevice
    route: Route
    insertion_delay_ps: float = NOMINAL_INSERTION_DELAY_PS

    def __post_init__(self) -> None:
        if self.insertion_delay_ps < 0.0:
            raise SensorError(
                f"insertion delay must be >= 0, got {self.insertion_delay_ps}"
            )
        self._cache_key: float = float("nan")
        self._cache = None

    def arrival_at_chain_ps(self, polarity: Polarity) -> float:
        """Time after launch at which the edge reaches the chain entry.

        Queries the device for the route's *current* transition delay, so
        BTI degradation and recovery show up here measurement by
        measurement.  The query is memoised per simulation timestep
        (delays only change when the device advances time).
        """
        if self._cache is None or self._cache_key != self.device.sim_hours:
            self._cache = self.device.transition_delays(self.route)
            self._cache_key = self.device.sim_hours
        if polarity is Polarity.RISING:
            return self.insertion_delay_ps + self._cache.rising_ps
        return self.insertion_delay_ps + self._cache.falling_ps
