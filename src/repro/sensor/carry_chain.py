"""The carry-chain delay line.

A linear array of fast-carry (CARRY8) elements through which the launched
transition propagates.  Ideally every element has the same delay ``tau``
(2.8 ps on UltraScale+); in silicon, per-element mismatch makes the bins
slightly unequal -- the "architectural irregularities" that motivate the
paper's averaging over ten traces at different theta settings.

Given the time a transition has been inside the chain, the model returns
the exact (fractional) element boundary the wavefront has reached, via
the cumulative per-bin widths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SensorError
from repro.rng import SeedLike, make_rng

#: Fractional sigma of per-element delay mismatch.
BIN_MISMATCH_SIGMA = 0.06


class CarryChain:
    """One placed carry chain with per-element mismatch.

    Attributes:
        length: number of delay elements (capture taps).
        nominal_bin_ps: design bin width (the 2.8 ps/bit constant).
    """

    def __init__(
        self,
        length: int,
        nominal_bin_ps: float,
        seed: SeedLike = None,
        mismatch_sigma: float = BIN_MISMATCH_SIGMA,
    ) -> None:
        if length <= 0:
            raise SensorError(f"chain length must be positive, got {length}")
        if nominal_bin_ps <= 0.0:
            raise SensorError(f"bin width must be positive, got {nominal_bin_ps}")
        self.length = length
        self.nominal_bin_ps = nominal_bin_ps
        rng = make_rng(seed)
        widths = nominal_bin_ps * rng.lognormal(
            mean=0.0, sigma=mismatch_sigma, size=length
        )
        #: boundaries[k] = time to traverse the first k elements.
        self._boundaries = np.concatenate([[0.0], np.cumsum(widths)])

    @property
    def total_delay_ps(self) -> float:
        """Time for a transition to traverse the whole chain."""
        return float(self._boundaries[-1])

    def wavefront_position(self, time_in_chain_ps: float) -> float:
        """Fractional element index the wavefront has reached.

        ``time_in_chain_ps`` is how long the transition has been
        propagating inside the chain when the capture clock fires.
        Clamped to [0, length].
        """
        if time_in_chain_ps <= 0.0:
            return 0.0
        if time_in_chain_ps >= self.total_delay_ps:
            return float(self.length)
        index = int(np.searchsorted(self._boundaries, time_in_chain_ps) - 1)
        lo = self._boundaries[index]
        hi = self._boundaries[index + 1]
        fraction = (time_in_chain_ps - lo) / (hi - lo)
        return float(index + fraction)

    def wavefront_positions(self, times_in_chain_ps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`wavefront_position` over an array of times.

        One ``searchsorted`` over the cumulative boundaries resolves every
        wavefront at once; the interpolation arithmetic is element-for-
        element the same as the scalar path, so a batched capture built on
        this method reproduces the scalar capture bit for bit.
        """
        times = np.asarray(times_in_chain_ps, dtype=float)
        index = np.clip(
            np.searchsorted(self._boundaries, times) - 1, 0, self.length - 1
        )
        lo = self._boundaries[index]
        hi = self._boundaries[index + 1]
        fraction = (times - lo) / (hi - lo)
        positions = index + fraction
        positions = np.where(times <= 0.0, 0.0, positions)
        return np.where(
            times >= self.total_delay_ps, float(self.length), positions
        )


def bank_wavefront_positions(
    chains: Sequence[CarryChain], times_in_chain_ps: np.ndarray
) -> np.ndarray:
    """Wavefront positions for a whole bank of chains at once.

    ``times_in_chain_ps`` has shape ``(routes, ...)``; row ``r`` resolves
    against ``chains[r]``'s boundaries, and every element equals
    ``chains[r].wavefront_positions(times[r])`` bit for bit: the index
    lookup counts boundaries strictly below each time (exactly what the
    per-chain ``searchsorted`` returns) and the interpolation arithmetic
    is identical.  One broadcast comparison replaces the per-route loop,
    so a board's full ``(routes, traces, samples)`` tensor resolves in a
    single call.
    """
    times = np.asarray(times_in_chain_ps, dtype=float)
    if times.ndim < 1 or times.shape[0] != len(chains):
        raise SensorError(
            f"need one time row per chain: {len(chains)} chains, "
            f"times shape {times.shape}"
        )
    if not chains:
        raise SensorError("need at least one chain")
    lengths = {chain.length for chain in chains}
    if len(lengths) != 1:
        raise SensorError(f"bank chains must share a length, got {lengths}")
    length = lengths.pop()
    boundaries = np.stack([chain._boundaries for chain in chains])
    shaped = boundaries.reshape(
        (len(chains),) + (1,) * (times.ndim - 1) + (length + 1,)
    )
    index = np.clip(
        (shaped < times[..., np.newaxis]).sum(axis=-1) - 1, 0, length - 1
    )
    full = np.broadcast_to(shaped, times.shape + (length + 1,))
    lo = np.take_along_axis(full, index[..., np.newaxis], axis=-1)[..., 0]
    hi = np.take_along_axis(full, index[..., np.newaxis] + 1, axis=-1)[..., 0]
    fraction = (times - lo) / (hi - lo)
    positions = index + fraction
    positions = np.where(times <= 0.0, 0.0, positions)
    totals = boundaries[:, -1].reshape((len(chains),) + (1,) * (times.ndim - 1))
    return np.where(times >= totals, float(length), positions)
