"""Pentimento: data remanence in cloud FPGAs -- full-system reproduction.

A from-scratch implementation of the system described in *Pentimento:
Data Remanence in Cloud FPGAs* (ASPLOS 2024) on a simulated substrate:

* :mod:`repro.physics` -- BTI stress/recovery transistor physics;
* :mod:`repro.fabric` -- an UltraScale+-like FPGA fabric with persistent
  per-segment analog state;
* :mod:`repro.sensor` -- the Tunable Dual-Polarity TDC sensor;
* :mod:`repro.designs` -- the paper's Target and Measure designs;
* :mod:`repro.cloud` -- an AWS-F1-like rental platform;
* :mod:`repro.core` -- the pentimento attack framework (Threat Models
  1 and 2, sequential extraction, skeleton-free localisation);
* :mod:`repro.analysis` -- kernel regression, series containers, stats;
* :mod:`repro.opentitan` -- the Earl Grey route-length study (Table 1);
* :mod:`repro.mitigations` -- the Section 8 defences and their
  evaluation;
* :mod:`repro.verify` -- the Section 8.1 design-vulnerability analyzer;
* :mod:`repro.baselines` -- related-work channels (Section 7);
* :mod:`repro.experiments` -- drivers reproducing Figures 6-8;
* :mod:`repro.persistence` -- JSON archival of experiment results.

Quickstart::

    from repro.experiments import Experiment1Config, run_experiment1
    result = run_experiment1(Experiment1Config.quick())
    print(result.recovery_score)
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
