#!/usr/bin/env python3
"""A month in the life of one cloud FPGA: imprint stacking and decay.

Longitudinal view of the vulnerability: a sequence of tenants rent the
same board, each leaving their pentimento; the board's analog state is
a palimpsest of its history.  The script walks five tenancies over
~700 simulated hours and prints, after each handoff, how readable each
previous tenant's data still is (the true residual delta on the routes
each tenant used).

Run:  python examples/fleet_longitudinal.py
"""

import numpy as np

from repro.cloud.billing import BillingMeter
from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.provider import CloudProvider
from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS

PART = VIRTEX_ULTRASCALE_PLUS

#: (tenant, hours of residency, value pattern seed)
TENANCIES = [
    ("ml-startup", 200, 1),
    ("hft-shop", 48, 2),
    ("genomics-lab", 150, 3),
    ("idle-in-pool", 72, None),  # the board rests between tenants
    ("video-encoder", 120, 4),
]


def main() -> None:
    provider = CloudProvider(seed=9)
    fleet = build_fleet(PART, 1, wear=cloud_wear_profile(2000.0), seed=10)
    provider.create_region("us-east-1", fleet)
    meter = BillingMeter.attach(provider)
    grid = PART.make_grid()

    # Each tenant's design uses its own physically disjoint slice of
    # the route fabric (one shared allocation keeps banks disjoint).
    active = [(t, s) for t, _, s in TENANCIES if s is not None]
    names = [f"{tenant}[{i}]" for tenant, _ in active for i in range(4)]
    all_routes = build_route_bank(
        grid, [10000.0] * (4 * len(active)), names=names
    )
    banks, secrets = {}, {}
    for index, (tenant, seed) in enumerate(active):
        banks[tenant] = all_routes[index * 4: (index + 1) * 4]
        secrets[tenant] = [int(b) for b in
                           np.random.default_rng(seed).integers(0, 2, 4)]

    device = fleet[0]
    history = []
    for tenant, hours, seed in TENANCIES:
        if seed is None:
            provider.advance(float(hours))
            print(f"\n[{provider.clock_hours:5.0f} h] board idles "
                  f"{hours} h in the pool")
        else:
            instance = provider.rent("us-east-1", tenant)
            design = build_target_design(
                PART, banks[tenant], secrets[tenant],
                heater_dsps=1024, name=tenant,
            )
            instance.load_image(design.bitstream)
            provider.advance(float(hours))
            provider.release(instance)
            history.append(tenant)
            print(f"\n[{provider.clock_hours:5.0f} h] {tenant} computed "
                  f"{hours} h and released (bill "
                  f"${meter.total_for(tenant):.0f})")

        for previous in history:
            residuals = [
                device.route_delta_ps(route) for route in banks[previous]
            ]
            signs = "".join(
                "1" if r > 0.05 else ("0" if r < -0.05 else "?")
                for r in residuals
            )
            truth = "".join(map(str, secrets[previous]))
            readable = sum(
                1 for s, t in zip(signs, truth) if s == t
            )
            print(f"    residue of {previous:13s}: "
                  f"max |delta| {max(abs(r) for r in residuals):5.2f} ps, "
                  f"sign-readable {readable}/4 (truth {truth})")


if __name__ == "__main__":
    main()
