#!/usr/bin/env python3
"""Skeleton-free localisation: finding the victim's routes without
Assumption 1.

Every attack in the paper assumes the attacker knows which physical
segments carried the data.  This example implements the paper's stated
future-work direction: the attacker only suspects *a region* of the die,
enumerates its long wire segments, binds a one-segment probe route and
TDC to each, and watches for burn-1 recovery transients.  Flagged
segments cluster back into the victim route's location.

Run:  python examples/skeleton_free_localization.py
"""

from repro.core.bench import LabBench
from repro.core.localize import (
    ImprintScanner,
    candidate_segments,
    cluster_imprints,
)
from repro.designs import build_route_bank, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.noise import LAB_NOISE
from repro.units import celsius_to_kelvin


def main() -> None:
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=33)
    bench = LabBench(device)

    # The victim: one 5000 ps route holding 1 and one holding 0, placed
    # somewhere the attacker does not know precisely.
    routes = build_route_bank(device.grid, [5000.0, 5000.0])
    target = build_target_design(device.part, routes, [1, 0], heater_dsps=0)
    device.load(target.bitstream)
    device.advance_hours(400.0, celsius_to_kelvin(85.0))
    device.wipe()
    victim_columns = sorted({s.origin.x for s in routes[0]})
    print(f"victim's burn-1 route occupies columns {victim_columns} "
          f"(unknown to the attacker)")

    # The attacker scans all LONG wires in a 5-column suspect window.
    candidates = candidate_segments(device.grid, columns=range(0, 5),
                                    tracks=2)
    print(f"scanning {len(candidates)} candidate segments for 12 hours "
          f"of recovery observation...")
    # Per-segment signal is weak, so the scan leans on measurement
    # averaging (16 passes per observation) and a strict threshold
    # against its own one-sided null.
    scanner = ImprintScanner(
        environment=bench, grid=device.grid, noise=LAB_NOISE,
        seed=7, z_threshold=3.5, measurement_passes=16,
    )
    result = scanner.scan(candidates, observation_hours=12)

    truth = set(routes[0].segments)
    hits = sum(1 for s in result.flagged if s in truth)
    print(f"flagged {result.flagged_count} segments "
          f"({hits} true positives, {result.flagged_count - hits} false)")

    for i, chain in enumerate(cluster_imprints(result.flagged)):
        columns = sorted({s.origin.x for s in chain})
        print(f"  reconstructed imprint cluster {i}: {len(chain)} segments "
              f"in columns {columns}")
    print("the cluster localises the victim's burn-1 route; a full-route "
          "probe over it then reads the imprint with skeleton-level SNR")


if __name__ == "__main__":
    main()
