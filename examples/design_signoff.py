#!/usr/bin/env python3
"""Design signoff: audit a design for pentimento exposure before shipping.

The Section 8.1 verification flow: compile the design, run the
vulnerability analyzer against the deployment scenario *and* the
conservative fresh-device scenario, read the per-net report, apply a
mitigation, and show the re-audit.

Run:  python examples/design_signoff.py
"""

from repro.designs import build_route_bank, build_target_design
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.verify import (
    ThreatScenario,
    analyze_bitstream,
    render_vulnerability_report,
)

PART = VIRTEX_ULTRASCALE_PLUS


def main() -> None:
    # A design shipping a 12-bit key whose placement let some bits land
    # on long routes (the physical-design tool optimised other paths).
    grid = PART.make_grid()
    routes = build_route_bank(
        grid, [600.0] * 4 + [2000.0] * 4 + [8000.0] * 4
    )
    key = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]
    design = build_target_design(PART, routes, key, heater_dsps=256,
                                 name="payment-hsm-core")

    print("=== audit against the expected deployment (aged F1 fleet) ===")
    deployed = analyze_bitstream(
        design.bitstream, scenario=ThreatScenario.aws_f1_default()
    )
    print(render_vulnerability_report(deployed))

    print("\n=== conservative bound (factory-new device) ===")
    fresh = analyze_bitstream(
        design.bitstream, scenario=ThreatScenario.fresh_device()
    )
    worst = fresh.worst()
    print(f"worst net: {worst.net_name} ({worst.route_delay_ps:.0f} ps), "
          f"grade {worst.grade.value.upper()}, extractable in "
          f"{worst.hours_to_extraction:.0f} h")

    print("\n=== after mitigation: 8-hour key rotation ===")
    rotated = analyze_bitstream(
        design.bitstream,
        scenario=ThreatScenario(residency_hours=8.0),
    )
    print(render_vulnerability_report(rotated))


if __name__ == "__main__":
    main()
