#!/usr/bin/env python3
"""Quickstart: burn a byte into an FPGA, wipe it, and read it back.

The minimal pentimento demonstration on a local lab bench:

1. hold the bits of a secret byte on eight FPGA routes for 48 hours;
2. wipe the device (all logical state destroyed);
3. load a TDC sensor array over the same routes and classify each
   route's burn-in drift back into a bit.

Run:  python examples/quickstart.py
"""

from repro.core.bench import LabBench
from repro.core.classify import BurnTrendClassifier
from repro.core.metrics import score_recovery
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor.noise import LAB_NOISE

SECRET_BYTE = 0b10110010


def main() -> None:
    secret_bits = [(SECRET_BYTE >> i) & 1 for i in range(8)]
    print(f"secret byte: {SECRET_BYTE:#010b}")

    # A factory-new board on the bench, eight 5000 ps routes.
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=2024)
    bench = LabBench(device)
    routes = build_route_bank(device.grid, [5000.0] * 8)

    # The victim design holds the secret statically; the measure design
    # instantiates one TDC per route over the same physical wires.
    target = build_target_design(device.part, routes, secret_bits,
                                 heater_dsps=64)
    measure = build_measure_design(device.part, routes)

    protocol = ConditionMeasureProtocol(
        environment=bench,
        target_bitstream=target.bitstream,
        measure_design=measure,
        routes=routes,
        condition_hours_per_cycle=2.0,
    )
    protocol.calibration.noise = LAB_NOISE
    protocol.calibrate()
    print("calibrated; conditioning for 48 hours "
          "(interleaved with hourly measurements)...")
    bundle = protocol.run_cycles(24)

    # The wipe: everything logical is gone...
    bench.clear()
    assert device.loaded_design is None

    # ...but the analog imprint classifies right back into bits.
    recovered = BurnTrendClassifier().classify_many(list(bundle))
    truth = {route.name: bit for route, bit in zip(routes, secret_bits)}
    score = score_recovery(recovered, truth)

    recovered_byte = sum(
        recovered[routes[i].name] << i for i in range(8)
    )
    print(f"recovered byte after wipe: {recovered_byte:#010b}")
    print(score)


if __name__ == "__main__":
    main()
