#!/usr/bin/env python3
"""Audit OpenTitan Earl Grey's security assets for pentimento exposure.

Reproduces the Section 5.3 study: implement the twenty security-critical
assets of Table 1 on the simulated Virtex UltraScale+, print the
route-length distribution, rank the assets by exposure (long routes =
many stressed switches = strong imprints), and demonstrate an attack on
the most exposed cryptographic key's longest-routed bits.

Run:  python examples/opentitan_audit.py
"""

import numpy as np

from repro.core.bench import LabBench
from repro.core.classify import BurnTrendClassifier
from repro.core.metrics import score_recovery
from repro.core.protocol import ConditionMeasureProtocol
from repro.designs import build_measure_design, build_target_design
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS
from repro.opentitan import (
    TABLE1_ASSETS,
    build_table1,
    implement_earl_grey,
    render_table1,
)
from repro.opentitan.study import vulnerability_ranking
from repro.sensor.noise import LAB_NOISE


def main() -> None:
    implementation = implement_earl_grey(seed=1)
    rows = build_table1(implementation)
    print(render_table1(rows))

    print("\nAssets ranked by pentimento exposure:")
    for path, exposure in vulnerability_ranking(rows)[:5]:
        print(f"  {exposure:8.1f}  {path}")

    # Attack the flash controller's OTP key: its longest-routed bits.
    asset = next(a for a in TABLE1_ASSETS if a.index == 19)
    delays = implementation.delays_for(asset)
    longest_bits = np.argsort(delays)[-8:]
    print(f"\nattacking {asset.path}: its 8 longest-routed bits "
          f"({delays[longest_bits].min():.0f}-"
          f"{delays[longest_bits].max():.0f} ps)")

    routes = implementation.routes_for(asset)
    target_routes = [routes[i] for i in longest_bits]
    rng = np.random.default_rng(3)
    key_bits = [int(b) for b in rng.integers(0, 2, len(target_routes))]

    device = FpgaDevice(VIRTEX_ULTRASCALE_PLUS, seed=4)
    bench = LabBench(device)
    target = build_target_design(device.part, target_routes, key_bits,
                                 heater_dsps=256, name="opentitan-stand-in")
    measure = build_measure_design(device.part, target_routes)
    protocol = ConditionMeasureProtocol(
        environment=bench,
        target_bitstream=target.bitstream,
        measure_design=measure,
        routes=target_routes,
        condition_hours_per_cycle=2.0,
    )
    protocol.calibration.noise = LAB_NOISE
    protocol.calibrate()
    bundle = protocol.run_cycles(24)  # 48 hours of key residency

    recovered = BurnTrendClassifier().classify_many(list(bundle))
    truth = {r.name: b for r, b in zip(target_routes, key_bits)}
    print(f"key bits held 48 h, then recovered through the TDC: "
          f"{score_recovery(recovered, truth)}")


if __name__ == "__main__":
    main()
