#!/usr/bin/env python3
"""Threat Model 1: extract a key from a sealed marketplace AFI.

A vendor sells an accelerator AFI on the cloud marketplace with a
32-bit key baked in as netlist constants.  The platform seals the image
("no FPGA internal design code is exposed") -- but the vendor's sources
are public (OpenTitan-style distribution), so the route skeleton is
known.  A customer-attacker rents the AFI, interleaves execution with
TDC measurements, and reads the key out of the burn-in drift.

Run:  python examples/marketplace_key_extraction.py
"""

import numpy as np

from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.marketplace import Marketplace
from repro.cloud.provider import CloudProvider
from repro.core.metrics import score_recovery
from repro.core.threat_model1 import ThreatModel1Attack
from repro.designs import build_route_bank, build_target_design
from repro.errors import AccessError
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS

KEY_BITS = 32


def main() -> None:
    rng = np.random.default_rng(7)
    key = [int(b) for b in rng.integers(0, 2, KEY_BITS)]
    print(f"vendor's secret key: {''.join(map(str, key))}")

    # --- The platform: one region of lightly-used F1 devices.
    provider = CloudProvider(seed=1)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 2,
                        wear=cloud_wear_profile(500.0), seed=2)
    provider.create_region("eu-west-2", fleet)
    marketplace = Marketplace()

    # --- The vendor compiles and publishes the accelerator.
    grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
    routes = build_route_bank(grid, [5000.0] * KEY_BITS)
    design = build_target_design(
        VIRTEX_ULTRASCALE_PLUS, routes, key,
        heater_dsps=2048, name="crypto-accelerator-v2",
    )
    listing = marketplace.publish(
        design.bitstream,
        publisher="acme-silicon",
        description="AES session accelerator",
        public_skeleton=True,  # sources on GitHub, skeleton derivable
    )
    print(f"published as {listing.afi_id}; sealed:", end=" ")
    try:
        listing.image.static_values()
    except AccessError:
        print("yes (platform refuses to expose design contents)")

    # --- The attack: rent, burn, measure, classify.
    attack = ThreatModel1Attack(
        provider=provider,
        marketplace=marketplace,
        afi_id=listing.afi_id,
        region="eu-west-2",
        seed=3,
    )
    print("renting the AFI and interleaving 72 h of execution with "
          "hourly measurements...")
    result = attack.run(burn_hours=72, measure_every_hours=2.0)

    truth = {route.name: bit for route, bit in zip(routes, key)}
    score = score_recovery(result.recovered_bits, truth)
    recovered = "".join(
        str(result.recovered_bits[r.name]) for r in routes
    )
    print(f"recovered key:       {recovered}")
    print(score)


if __name__ == "__main__":
    main()
