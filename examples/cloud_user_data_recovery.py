#!/usr/bin/env python3
"""Threat Model 2: recover a previous tenant's runtime data.

The full cloud timeline:

1. the attacker calibrates theta_init on a board they rent themselves
   (it transfers across boards of the same part) and releases it;
2. a victim rents an instance, loads their workload with a 16-bit
   runtime secret on known route locations, computes for 150 hours, and
   releases; the provider scrubs all logical state;
3. the attacker flash-acquires the region (guaranteeing possession of
   the victim's physical board), conditions every route to 0, and
   watches 20 hours of BTI recovery;
4. the board showing recovery transients is the victim's; each
   transient route was a 1, each flat route a 0.

Run:  python examples/cloud_user_data_recovery.py
"""

import numpy as np

from repro.cloud.fleet import build_fleet, cloud_wear_profile
from repro.cloud.provider import CloudProvider
from repro.core.metrics import score_recovery
from repro.core.phases import CalibrationPhase
from repro.core.threat_model2 import ThreatModel2Attack
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.parts import VIRTEX_ULTRASCALE_PLUS

SECRET_BITS = 16


def main() -> None:
    rng = np.random.default_rng(11)
    secret = [int(b) for b in rng.integers(0, 2, SECRET_BITS)]
    print(f"victim's runtime secret: {''.join(map(str, secret))}")

    provider = CloudProvider(seed=1)
    fleet = build_fleet(VIRTEX_ULTRASCALE_PLUS, 3,
                        wear=cloud_wear_profile(400.0), seed=2)
    provider.create_region("eu-west-2", fleet)

    grid = VIRTEX_ULTRASCALE_PLUS.make_grid()
    routes = build_route_bank(grid, [10000.0] * SECRET_BITS)
    victim_design = build_target_design(
        VIRTEX_ULTRASCALE_PLUS, routes, secret,
        heater_dsps=3896, name="victim-ml-inference",
    )
    measure_design = build_measure_design(VIRTEX_ULTRASCALE_PLUS, routes)

    # (1) Attacker's prior calibration on their own rental.
    calib = provider.rent("eu-west-2", "attacker")
    theta_init = dict(
        CalibrationPhase(measure_design, seed=5).run(calib).theta_init
    )
    provider.release(calib)
    print("attacker captured theta_init on their own board and released it")

    # (2) The victim computes, releases; the provider wipes the board.
    victim = provider.rent("eu-west-2", "victim")
    victim.load_image(victim_design.bitstream)
    provider.advance(150.0)
    provider.release(victim)
    print("victim finished 150 h of computation; board wiped and pooled")

    # (3)-(4) Flash-acquire, probe all boards, classify the transients.
    attack = ThreatModel2Attack(
        provider=provider,
        region="eu-west-2",
        routes=routes,
        theta_init=theta_init,
        conditioned_to=0,
        seed=9,
    )
    print("flash attack + 20 h recovery observation on every board...")
    result = attack.run(recovery_hours=20)
    print(f"boards probed: {result.devices_probed}; victim board "
          f"identified: {result.bundle.label}")

    truth = {route.name: bit for route, bit in zip(routes, secret)}
    score = score_recovery(result.recovered_bits, truth)
    recovered = "".join(str(result.recovered_bits[r.name]) for r in routes)
    print(f"recovered secret:        {recovered}")
    print(score)


if __name__ == "__main__":
    main()
