#!/usr/bin/env python3
"""Compare the Section 8 mitigations against the extraction attack.

Runs the Threat Model 1 measurement interleave against a victim
protected by each user-side mitigation schedule and prints the
attacker's bit-error rate: 0.0 means the secret leaked completely,
0.5 means the attacker learned nothing.

Run:  python examples/mitigation_comparison.py
"""

from repro.analysis.report import render_table
from repro.designs import build_target_design
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.mitigations import (
    KeyRotationSchedule,
    PeriodicInversionSchedule,
    ShufflingSchedule,
    StaticSchedule,
    evaluate_schedule,
)
from repro.mitigations.evaluation import default_evaluation_routes

PART = ZYNQ_ULTRASCALE_PLUS
SECRET = [1, 0, 1, 1, 0, 0, 1, 0]


def main() -> None:
    routes = default_evaluation_routes(
        PART, lengths=(5000.0,) * 4 + (10000.0,) * 4
    )
    schedules = {
        "none (static secret)": StaticSchedule(
            build_target_design(PART, routes, SECRET, heater_dsps=0)
        ),
        "hourly inversion": PeriodicInversionSchedule(
            PART, routes, SECRET, period_epochs=1
        ),
        "4-hourly inversion": PeriodicInversionSchedule(
            PART, routes, SECRET, period_epochs=2
        ),
        "per-epoch shuffling": ShufflingSchedule(PART, routes, SECRET, seed=8),
        "key rotation (8 h)": KeyRotationSchedule(
            PART, routes, SECRET, period_epochs=4, seed=8
        ),
    }
    rows = []
    for name, schedule in schedules.items():
        report = evaluate_schedule(
            schedule, routes, SECRET,
            burn_hours=48, measure_every_hours=2.0, seed=31,
        )
        rows.append([name, f"{report.attacker_ber:.2f}",
                     f"{report.score.correct_bits}/{report.score.total_bits}"])
        print(f"  evaluated: {report}")
    print()
    print(render_table(
        ["Mitigation", "attacker BER", "bits recovered"],
        rows,
        title="User-side mitigations vs Threat Model 1 extraction (48 h burn)",
    ))


if __name__ == "__main__":
    main()
