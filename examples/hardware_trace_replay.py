#!/usr/bin/env python3
"""Record raw TDC traces, archive them, and replay the analysis.

The bridge to real hardware: a silicon deployment logs exactly what the
simulated sensor produces -- capture-register words per trace, polarity
and theta.  This example records a short burn-in run at the raw-word
level, writes an NPZ archive, reloads it, and shows the replayed
pipeline reproducing the live results bit-for-bit.  Swap the recording
loop for a hardware harness and everything downstream is unchanged.

Run:  python examples/hardware_trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.core.bench import LabBench
from repro.core.classify import BurnTrendClassifier
from repro.designs import (
    build_measure_design,
    build_route_bank,
    build_target_design,
)
from repro.fabric.device import FpgaDevice
from repro.fabric.parts import ZYNQ_ULTRASCALE_PLUS
from repro.sensor import LAB_NOISE, TunableDualPolarityTdc, find_theta_init
from repro.sensor.traceio import (
    MeasurementRecord,
    load_trace_archive,
    records_to_series,
    save_trace_archive,
)


def main() -> None:
    device = FpgaDevice(ZYNQ_ULTRASCALE_PLUS, seed=71)
    bench = LabBench(device)
    routes = build_route_bank(device.grid, [5000.0, 5000.0])
    secret = [1, 0]
    target = build_target_design(device.part, routes, secret, heater_dsps=0)
    build_measure_design(device.part, routes)  # the deployed sensor image

    tdcs = {
        route.name: TunableDualPolarityTdc(device, route, noise=LAB_NOISE,
                                           seed=i)
        for i, route in enumerate(routes)
    }
    theta = {name: find_theta_init(tdc) for name, tdc in tdcs.items()}

    print("recording 12 hourly measurements at the raw-capture-word level...")
    records = []
    live_ends = {}
    for hour in range(12):
        for route in routes:
            measurement, rising, falling = tdcs[route.name].measure_raw(
                theta[route.name]
            )
            live_ends[route.name] = measurement.delta_ps
            records.append(MeasurementRecord(
                route_name=route.name,
                nominal_delay_ps=route.nominal_delay_ps,
                hour=float(hour),
                theta_init_ps=theta[route.name],
                bin_ps=tdcs[route.name].chain.nominal_bin_ps,
                rising=tuple(rising),
                falling=tuple(falling),
            ))
        bench.load_image(target.bitstream)
        bench.run_hours(4.0)
        bench.clear()

    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace_archive(records, Path(tmp) / "run.npz")
        size_kb = path.stat().st_size / 1024.0
        print(f"archived {len(records)} measurement records "
              f"({size_kb:.0f} KiB of raw capture words)")

        restored = load_trace_archive(path)
        recovered = {}
        for route in routes:
            series = records_to_series(
                [r for r in restored if r.route_name == route.name]
            )
            recovered[route.name] = BurnTrendClassifier().classify(series)
            print(f"  {route.name}: replayed last delta "
                  f"{series.raw_delta_ps[-1]:+.3f} ps "
                  f"(live {live_ends[route.name]:+.3f} ps) "
                  f"-> bit {recovered[route.name]}")

    truth = {route.name: bit for route, bit in zip(routes, secret)}
    assert recovered == truth
    print("replayed classification matches the live secret: "
          + "".join(str(truth[r.name]) for r in routes))


if __name__ == "__main__":
    main()
